"""Property-based tests (hypothesis) over core invariants.

A random-DFG strategy drives the scheduling/allocation stack: every
generated behaviour must schedule legally, allocate without overlap,
survive merger rescheduling, and keep its testability measures in
range.  Word-level gate blocks are checked against the reference
semantics on random operand pairs.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.alloc import left_edge
from repro.dfg import DFGBuilder, OpKind, variable_lifetimes
from repro.dfg.analysis import (alap_steps, asap_steps, critical_path_length)
from repro.dfg.lifetime import max_overlap
from repro.etpn import default_design
from repro.petri import control_net_from_schedule, execution_time
from repro.rtl import apply_op
from repro.sched import check_precedence, compact, schedule_length
from repro.sched.resched import merge_order_candidates
from repro.testability import analyze

_BINARY_KINDS = [OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.AND, OpKind.OR,
                 OpKind.XOR]


@st.composite
def dfgs(draw):
    """Random acyclic DFGs: each op reads earlier values or inputs."""
    num_inputs = draw(st.integers(2, 5))
    num_ops = draw(st.integers(1, 12))
    builder = DFGBuilder("prop")
    inputs = [f"i{k}" for k in range(num_inputs)]
    builder.inputs(*inputs)
    available = list(inputs)
    for index in range(num_ops):
        kind = draw(st.sampled_from(_BINARY_KINDS))
        lhs = draw(st.sampled_from(available))
        rhs = draw(st.sampled_from(available))
        # Occasionally redefine an existing variable (multi-def).
        if available != inputs and draw(st.booleans()) and draw(st.booleans()):
            target = draw(st.sampled_from(
                [v for v in available if v not in inputs]))
        else:
            target = f"v{index}"
        builder.op(f"N{index}", kind, target, lhs, rhs)
        if target not in available:
            available.append(target)
    return builder.build()


@settings(max_examples=60, deadline=None)
@given(dfgs())
def test_asap_is_legal_and_minimal(dfg):
    steps = asap_steps(dfg)
    check_precedence(dfg, steps)
    assert schedule_length(steps) == critical_path_length(dfg)


@settings(max_examples=60, deadline=None)
@given(dfgs())
def test_asap_never_after_alap(dfg):
    asap = asap_steps(dfg)
    alap = alap_steps(dfg)
    assert all(asap[o] <= alap[o] for o in dfg.operations)


@settings(max_examples=60, deadline=None)
@given(dfgs())
def test_compact_preserves_legality(dfg):
    steps = {o: s * 3 + 1 for o, s in asap_steps(dfg).items()}
    compacted = compact(steps)
    check_precedence(dfg, compacted)
    assert min(compacted.values()) == 0


@settings(max_examples=60, deadline=None)
@given(dfgs())
def test_left_edge_is_optimal_and_disjoint(dfg):
    lifetimes = variable_lifetimes(dfg, asap_steps(dfg))
    assignment = left_edge(lifetimes)
    groups: dict[str, list[str]] = {}
    for var, reg in assignment.items():
        groups.setdefault(reg, []).append(var)
    for variables in groups.values():
        for i, a in enumerate(variables):
            for b in variables[i + 1:]:
                assert not lifetimes[a].overlaps(lifetimes[b])
    # Left-edge on sorted intervals achieves the max-overlap bound.
    assert len(groups) == max(max_overlap(lifetimes), 1) \
        or len(groups) == max_overlap(lifetimes)


@settings(max_examples=40, deadline=None)
@given(dfgs())
def test_default_design_always_valid(dfg):
    design = default_design(dfg)
    design.validate()
    assert design.execution_time == design.num_steps


@settings(max_examples=30, deadline=None)
@given(dfgs())
def test_testability_measures_in_range(dfg):
    analysis = analyze(default_design(dfg).datapath)
    for node in analysis.all_nodes().values():
        assert 0.0 <= node.cc <= 1.0
        assert 0.0 <= node.co <= 1.0
        assert node.sc >= 0.0
        assert node.so >= 0.0


@settings(max_examples=30, deadline=None)
@given(dfgs(), st.integers(0, 2 ** 31))
def test_first_feasible_merger_revalidates(dfg, seed):
    """Any feasible merger outcome must produce a valid design."""
    import random

    from repro.cost import CostModel
    from repro.synth import compatible_pairs, try_merge

    design = default_design(dfg)
    pairs = compatible_pairs(design)
    if not pairs:
        return
    rng = random.Random(seed)
    pair = rng.choice(pairs)
    outcome = try_merge(design, pair.kind, pair.node_a, pair.node_b,
                        CostModel(bits=4))
    if outcome is not None:
        outcome.design.validate()
        assert outcome.design.num_steps >= 1


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 30), st.booleans())
def test_control_net_execution_time(steps, looped):
    net = control_net_from_schedule("p", steps,
                                    loop_condition="c" if looped else None)
    assert execution_time(net) == steps


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 9), min_size=0, max_size=6),
       st.lists(st.integers(0, 9), min_size=0, max_size=6))
def test_merge_order_candidates_are_interleavings(ranks_a, ranks_b):
    seq_a = [f"a{k}" for k in range(len(ranks_a))]
    seq_b = [f"b{k}" for k in range(len(ranks_b))]
    rank = {**{n: r for n, r in zip(seq_a, ranks_a)},
            **{n: r for n, r in zip(seq_b, ranks_b)}}
    # Ranks within a module are non-decreasing in practice; sort them.
    seq_a.sort(key=lambda n: rank[n])
    seq_b.sort(key=lambda n: rank[n])
    for candidate in merge_order_candidates(seq_a, seq_b, rank):
        assert sorted(candidate) == sorted(seq_a + seq_b)
        assert [x for x in candidate if x in seq_a] == seq_a
        assert [x for x in candidate if x in seq_b] == seq_b


@settings(max_examples=120, deadline=None)
@given(st.sampled_from([OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.DIV,
                        OpKind.LT, OpKind.EQ, OpKind.XOR, OpKind.SHR]),
       st.integers(0, 255), st.integers(0, 255))
def test_semantics_total_and_bounded(kind, a, b):
    result = apply_op(kind, a, b, 8)
    assert 0 <= result <= 255
