"""Unit tests for schedule helpers and constraint checking."""

import pytest

from repro.errors import ScheduleError
from repro.sched import (check_precedence, compact, module_conflicts,
                         ops_by_step, precedence_violations, schedule_length,
                         shift_from)


class TestHelpers:
    def test_length(self):
        assert schedule_length({"a": 0, "b": 2}) == 3
        assert schedule_length({}) == 0

    def test_length_with_delays(self):
        assert schedule_length({"a": 0, "b": 1}, {"b": 3}) == 4

    def test_ops_by_step(self):
        grouped = ops_by_step({"b": 1, "a": 0, "c": 1})
        assert grouped == {0: ["a"], 1: ["b", "c"]}

    def test_compact_removes_gaps(self):
        assert compact({"a": 0, "b": 3, "c": 7}) == {"a": 0, "b": 1, "c": 2}

    def test_compact_preserves_sharing(self):
        compacted = compact({"a": 2, "b": 2, "c": 5})
        assert compacted["a"] == compacted["b"] == 0
        assert compacted["c"] == 1

    def test_shift_opens_dummy_step(self):
        shifted = shift_from({"a": 0, "b": 1, "c": 2}, first_affected=1)
        assert shifted == {"a": 0, "b": 2, "c": 3}

    def test_shift_amount(self):
        shifted = shift_from({"a": 0, "b": 1}, 1, amount=3)
        assert shifted == {"a": 0, "b": 4}


class TestPrecedence:
    def test_valid_schedule(self, chain_dfg):
        check_precedence(chain_dfg, {"N1": 0, "N2": 1, "N3": 2})

    def test_flow_violation(self, chain_dfg):
        violations = precedence_violations(chain_dfg,
                                           {"N1": 0, "N2": 0, "N3": 1})
        assert any(v.edge.src == "N1" and v.edge.dst == "N2"
                   for v in violations)

    def test_check_raises(self, chain_dfg):
        with pytest.raises(ScheduleError):
            check_precedence(chain_dfg, {"N1": 2, "N2": 1, "N3": 0})

    def test_incomplete_schedule(self, chain_dfg):
        with pytest.raises(ScheduleError):
            check_precedence(chain_dfg, {"N1": 0})

    def test_negative_step(self, chain_dfg):
        with pytest.raises(ScheduleError):
            check_precedence(chain_dfg, {"N1": -1, "N2": 0, "N3": 1})

    def test_anti_dependence_same_step_ok(self):
        from repro.dfg import DFGBuilder
        b = DFGBuilder("anti")
        b.inputs("a", "b")
        b.op("N1", "+", "t", "a", "b")
        b.op("N2", "+", "s", "t", "a")
        b.op("N3", "-", "t", "a", "b")
        dfg = b.build()
        # N3 redefines t in the same step N2 reads it: legal.
        check_precedence(dfg, {"N1": 0, "N2": 1, "N3": 1})

    def test_multidef_output_dependence(self, multidef_dfg):
        with pytest.raises(ScheduleError):
            check_precedence(multidef_dfg, {"N1": 0, "N2": 0})


class TestModuleConflicts:
    def test_conflict_detected(self):
        conflicts = module_conflicts({"a": 0, "b": 0},
                                     {"M1": ["a", "b"]})
        assert conflicts == [("M1", "a", "b")]

    def test_no_conflict(self):
        assert module_conflicts({"a": 0, "b": 1}, {"M1": ["a", "b"]}) == []
