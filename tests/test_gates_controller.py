"""End-to-end validation of the embedded FSM controller.

The expanded netlist with the controller inside must execute the whole
schedule by itself: hold the data inputs, clock it for one traversal,
and the behavioural results appear at the outputs — no external control
of any kind.
"""

import random

import pytest

from repro.bench import load
from repro.etpn import default_design
from repro.gates import CompiledCircuit, expand_with_controller
from repro.gates.drive import read_word
from repro.gates.simulate import FULL
from repro.rtl import build_control_table, evaluate_dfg, generate_rtl
from repro.synth import run_camad, run_ours


def run_free_running(design, bits=4, seed=5, rounds=4):
    rtl = generate_rtl(design, bits)
    table = build_control_table(design, rtl)
    circuit = CompiledCircuit(expand_with_controller(rtl, table))
    rng = random.Random(seed)
    for _ in range(rounds):
        inputs = {v.name: rng.randrange(1 << bits)
                  for v in design.dfg.inputs()}
        vector = {}
        for port in rtl.in_ports:
            var = port.removeprefix("in_")
            for i in range(bits):
                vector[f"{port}[{i}]"] = (FULL if (inputs[var] >> i) & 1
                                          else 0)
        # One full traversal + one observation cycle; the FSM wraps on
        # its own, so the same vector is applied every cycle.
        per_cycle, _ = circuit.run([vector] * (table.phase_count + 1))
        expected = evaluate_dfg(design.dfg, inputs, bits)
        for out_port in rtl.out_ports:
            var = out_port.removeprefix("out_")
            defs = design.dfg.defs_of(var)
            sample = max(design.steps[d] for d in defs) + 2
            got = read_word(per_cycle[sample], out_port, bits)
            assert got == expected[var], (design.dfg.name, design.label,
                                          var)
        for cond_port in rtl.cond_ports:
            var = cond_port.removeprefix("cond_")
            def_op = design.dfg.defs_of(var)[0]
            sample = design.steps[def_op] + 1
            assert (per_cycle[sample][cond_port] & 1) == expected[var]


class TestEmbeddedController:
    @pytest.mark.parametrize("name", ["ex", "diffeq", "tseng"])
    def test_default_designs_self_run(self, name):
        run_free_running(default_design(load(name)))

    @pytest.mark.parametrize("name", ["ex", "diffeq"])
    def test_synthesised_designs_self_run(self, name):
        run_free_running(run_ours(load(name)).design)

    def test_camad_design_self_runs(self):
        run_free_running(run_camad(load("ex")).design)

    def test_fsm_wraps_after_schedule(self):
        """After phase_count cycles the one-hot ring returns to phase 0:
        a second traversal produces the same outputs."""
        design = default_design(load("tseng"))
        bits = 4
        rtl = generate_rtl(design, bits)
        table = build_control_table(design, rtl)
        circuit = CompiledCircuit(expand_with_controller(rtl, table))
        inputs = {v.name: 3 for v in design.dfg.inputs()}
        vector = {}
        for port in rtl.in_ports:
            var = port.removeprefix("in_")
            for i in range(bits):
                vector[f"{port}[{i}]"] = (FULL if (inputs[var] >> i) & 1
                                          else 0)
        cycles = 2 * table.phase_count + 1
        per_cycle, _ = circuit.run([vector] * cycles)
        out_port = next(iter(rtl.out_ports))
        var = out_port.removeprefix("out_")
        sample = max(design.steps[d]
                     for d in design.dfg.defs_of(var)) + 2
        first = read_word(per_cycle[sample], out_port, bits)
        second = read_word(per_cycle[sample + table.phase_count],
                           out_port, bits)
        assert first == second == evaluate_dfg(design.dfg, inputs,
                                               bits)[var]
