"""Property-based round-trip tests for serialisation and exports."""

from hypothesis import given, settings

from repro.etpn import default_design
from repro.gates import expand_to_gates, netlist_to_verilog
from repro.io import design_from_dict, design_to_dict, dfg_from_dict, dfg_to_dict
from repro.rtl import evaluate_dfg, generate_rtl

from .test_properties import dfgs


@settings(max_examples=40, deadline=None)
@given(dfgs())
def test_dfg_roundtrip_preserves_everything(dfg):
    rebuilt = dfg_from_dict(dfg_to_dict(dfg))
    assert rebuilt.op_order == dfg.op_order
    assert set(rebuilt.variables) == set(dfg.variables)
    for op_id in dfg.operations:
        original = dfg.operation(op_id)
        copy = rebuilt.operation(op_id)
        assert copy.kind == original.kind
        assert copy.srcs == original.srcs
        assert copy.dst == original.dst
    # Behavioural equivalence on a fixed vector.
    inputs = {v.name: 5 for v in dfg.inputs()}
    assert evaluate_dfg(dfg, inputs, 8) == evaluate_dfg(rebuilt, inputs, 8)


@settings(max_examples=25, deadline=None)
@given(dfgs())
def test_design_roundtrip_revalidates(dfg):
    design = default_design(dfg)
    rebuilt = design_from_dict(design_to_dict(design))
    assert rebuilt.steps == design.steps
    assert rebuilt.summary() == design.summary()


@settings(max_examples=10, deadline=None)
@given(dfgs())
def test_verilog_emits_for_any_design(dfg):
    netlist = expand_to_gates(generate_rtl(default_design(dfg), 2))
    text = netlist_to_verilog(netlist)
    assert text.count("endmodule") == 1
    # Every DFF appears in the reset branch.
    assert text.count("<= 1'b0;") == len(netlist.dffs())
