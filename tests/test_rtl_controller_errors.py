"""Controller/RTL edge cases and the ATPG result container."""

import pytest

from repro.atpg.results import ATPGResult
from repro.bench import load
from repro.rtl import build_control_table, generate_rtl
from repro.rtl.components import Ref, const_ref, port_ref, reg_ref, unit_ref


class TestRefs:
    def test_ref_constructors(self):
        assert reg_ref("R1") == Ref("reg", "R1")
        assert unit_ref("M1") == Ref("unit", "M1")
        assert port_ref("in_a") == Ref("port", "in_a")
        assert const_ref(3) == Ref("const", "3")

    def test_refs_hashable_and_sortable(self):
        refs = {reg_ref("R1"), reg_ref("R1"), const_ref(1)}
        assert len(refs) == 2
        assert sorted(refs, key=str)


class TestControlTableShape:
    def test_single_op_per_unit_per_phase(self):
        """No phase asserts two different op-selects on one unit."""
        from repro.synth import run_ours
        design = run_ours(load("diffeq")).design
        rtl = generate_rtl(design, 4)
        table = build_control_table(design, rtl)
        for phase in table.phases:
            for unit_id, unit in rtl.units.items():
                if not unit.needs_op_select():
                    continue
                asserted = [k for k in unit.kinds
                            if phase.get(unit.op_signal(k))]
                assert len(asserted) <= 1

    def test_one_hot_register_selects(self):
        from repro.synth import run_ours
        design = run_ours(load("ex")).design
        rtl = generate_rtl(design, 4)
        table = build_control_table(design, rtl)
        for phase in table.phases:
            for reg_id, spec in rtl.registers.items():
                if not spec.needs_mux():
                    continue
                hot = [i for i in range(len(spec.sources))
                       if phase.get(spec.select_signal(i))]
                if phase.get(spec.load_signal()):
                    assert len(hot) == 1
                else:
                    assert len(hot) == 0


class TestATPGResult:
    def test_coverage_zero_when_empty(self):
        assert ATPGResult().fault_coverage == 0.0

    def test_properties(self):
        result = ATPGResult(total_faults=200, detected_random=150,
                            detected_deterministic=30,
                            random_cycles=100, deterministic_cycles=20,
                            random_effort=5, deterministic_effort=7)
        assert result.detected == 180
        assert result.fault_coverage == pytest.approx(90.0)
        assert result.test_cycles == 120
        assert result.tg_effort == 12
        assert result.summary()["coverage_pct"] == 90.0
