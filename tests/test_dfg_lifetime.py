"""Unit tests for variable lifetime analysis."""

import pytest

from repro.dfg import variable_lifetimes, conflict_graph, disjoint
from repro.dfg.lifetime import Lifetime, max_overlap
from repro.errors import ScheduleError


class TestLifetimeIntervals:
    def test_chain_lifetimes(self, chain_dfg):
        steps = {"N1": 0, "N2": 1, "N3": 2}
        lts = variable_lifetimes(chain_dfg, steps)
        # Inputs are loaded the step before first use.
        assert lts["a"] == Lifetime("a", -1, 0)
        assert lts["c"] == Lifetime("c", 0, 1)
        # x is born at N1's step, dies at its last use.
        assert lts["x"] == Lifetime("x", 0, 1)
        # z is an output: survives one step past its definition.
        assert lts["z"] == Lifetime("z", 2, 3)

    def test_condition_has_no_lifetime(self, loop_dfg):
        steps = {"N1": 0, "N2": 1}
        lts = variable_lifetimes(loop_dfg, steps)
        assert "c" not in lts

    def test_multidef_merged_interval(self, multidef_dfg):
        steps = {"N1": 0, "N2": 1}
        lts = variable_lifetimes(multidef_dfg, steps)
        # u1 born at N1 (step 0), redefined at N2 (step 1), output -> dies 2.
        assert lts["u1"] == Lifetime("u1", 0, 2)

    def test_incomplete_schedule_rejected(self, chain_dfg):
        with pytest.raises(ScheduleError):
            variable_lifetimes(chain_dfg, {"N1": 0})


class TestOverlap:
    def test_touching_intervals_disjoint(self):
        a = Lifetime("a", 0, 1)
        b = Lifetime("b", 1, 2)
        assert not a.overlaps(b)
        assert not b.overlaps(a)

    def test_nested_intervals_overlap(self):
        a = Lifetime("a", 0, 5)
        b = Lifetime("b", 1, 2)
        assert a.overlaps(b)

    def test_span(self):
        assert Lifetime("a", 0, 3).span == 3
        assert Lifetime("a", 2, 2).span == 0


class TestConflictGraph:
    def test_chain_conflicts(self, chain_dfg):
        steps = {"N1": 0, "N2": 1, "N3": 2}
        lts = variable_lifetimes(chain_dfg, steps)
        graph = conflict_graph(lts)
        # a and b both live into step 0: conflict.
        assert "b" in graph["a"]
        # a dies at step 0; z born at step 2: no conflict.
        assert "z" not in graph["a"]

    def test_disjoint_group(self, chain_dfg):
        steps = {"N1": 0, "N2": 1, "N3": 2}
        lts = variable_lifetimes(chain_dfg, steps)
        assert disjoint(lts, ["a", "y"])     # a:( -1,0], y:(1,2]
        assert not disjoint(lts, ["a", "b"])

    def test_max_overlap(self, diamond_dfg):
        steps = {"N1": 0, "N2": 0, "N3": 1}
        lts = variable_lifetimes(diamond_dfg, steps)
        # a, b, c, d all live during step 0.
        assert max_overlap(lts) >= 4
