"""Unit tests for the MHP-based race detector and its lint rules."""

from repro.alloc import default_binding
from repro.analysis import ConcurrencyAnalysis
from repro.dfg import DFGBuilder
from repro.etpn.from_dfg import default_design
from repro.lint import lint_analysis

from .test_analysis_reach_graph import fork_join_net


def forked_dfg():
    """Two independent adds feeding a third — placeable on a fork."""
    b = DFGBuilder("forked")
    b.inputs("a", "b", "c", "d")
    b.op("N1", "+", "x", "a", "b")
    b.op("N2", "+", "y", "c", "d")
    b.op("N3", "+", "z", "x", "y")
    b.outputs("z")
    return b.build()


def forked_setup():
    """The forked DFG placed on a fork-join control part.

    N1 runs on branch A, N2 on branch B (concurrently), N3 after the
    join.  The nominal schedule puts N1 and N2 in different steps, so
    the schedule-level BND rules see no sharing conflict at all.
    """
    dfg = forked_dfg()
    net = fork_join_net(2)
    placement = {"N1": "A0", "N2": "B1", "N3": "J"}
    steps = {"N1": 1, "N2": 2, "N3": 3}
    return dfg, steps, net, placement


def analysis_with(binding):
    dfg, steps, net, placement = forked_setup()
    return ConcurrencyAnalysis(dfg, steps, binding, net=net,
                               placement=placement)


class TestConcurrentPairs:
    def test_cross_branch_ops_concurrent(self):
        analysis = analysis_with(default_binding(forked_dfg()))
        assert analysis.concurrent("N1", "N2")
        assert not analysis.concurrent("N1", "N3")
        assert not analysis.concurrent("N1", "N1")
        assert analysis.concurrent_op_pairs() == {frozenset(("N1", "N2"))}

    def test_linear_designs_have_no_cross_step_concurrency(self, chain_dfg,
                                                           diamond_dfg):
        for dfg in (chain_dfg, diamond_dfg):
            design = default_design(dfg)
            analysis = ConcurrencyAnalysis.of_design(design)
            assert analysis.concurrent_op_pairs() == set()
            assert analysis.races() == []


class TestRaceFindings:
    def test_clean_forked_binding_has_no_races(self):
        analysis = analysis_with(default_binding(forked_dfg()))
        assert analysis.races() == []

    def test_rac001_double_booked_module(self):
        binding = default_binding(forked_dfg()).merge_modules("M_N1", "M_N2")
        findings = analysis_with(binding).races()
        [sharing] = [f for f in findings if f.code == "RAC001"]
        assert sharing.location == "M_N1"
        assert "N1" in sharing.message and "N2" in sharing.message

    def test_rac002_write_write_race(self):
        binding = default_binding(forked_dfg()).merge_registers("R_x", "R_y")
        codes = [f.code for f in analysis_with(binding).races()]
        assert "RAC002" in codes

    def test_rac003_read_write_race(self):
        """N2 on branch B reads 'a' while a rebound write to R_a races it.

        Rebind N1's result x into register R_a: N1 (branch A) then
        overwrites R_a while N2 (branch B) still reads 'a' from it.
        """
        dfg, steps, net, placement = forked_setup()
        b = DFGBuilder("reader")
        b.inputs("a", "b", "c")
        b.op("N1", "+", "x", "a", "b")
        b.op("N2", "+", "y", "a", "c")
        b.op("N3", "+", "z", "x", "y")
        b.outputs("z")
        dfg = b.build()
        binding = default_binding(dfg).merge_registers("R_a", "R_x")
        analysis = ConcurrencyAnalysis(dfg, steps, binding, net=net,
                                       placement=placement)
        codes = [f.code for f in analysis.races()]
        assert "RAC003" in codes

    def test_rac004_mux_contention(self):
        """One shared module fed from different registers on both
        branches contends at its input multiplexer."""
        binding = default_binding(forked_dfg()).merge_modules("M_N1", "M_N2")
        findings = analysis_with(binding).races()
        muxes = [f for f in findings if f.code == "RAC004"]
        # one finding per contended port: both operand muxes conflict
        assert [m.location for m in muxes] == ["M_N1.in0", "M_N1.in1"]


class TestLintAnalysisLayer:
    def test_rules_fire_through_the_registry(self):
        dfg, steps, net, placement = forked_setup()
        binding = default_binding(dfg).merge_modules("M_N1", "M_N2")
        report = lint_analysis(dfg, steps, binding, net=net,
                               placement=placement)
        assert "RAC001" in report.codes()
        assert all(d.layer == "analysis" for d in report
                   if d.code.startswith("RAC"))

    def test_clean_design_is_quiet(self, chain_dfg):
        design = default_design(chain_dfg)
        report = lint_analysis(chain_dfg, design.steps, design.binding)
        assert len(report) == 0

    def test_unanalysable_context_reports_lnt001(self, chain_dfg):
        # An incomplete schedule cannot be certified or net-built.
        report = lint_analysis(chain_dfg, {"N1": 0},
                               default_binding(chain_dfg))
        assert "LNT001" in report.codes()
