"""Unit tests validating the benchmark reconstructions against the
paper's tables: operation counts and kinds, variable sets, and the
feasibility of the published module groupings."""

import pytest

from repro.bench import EXTRA_BENCHMARKS, TABLE_BENCHMARKS, load, names
from repro.bench import dct, diffeq, ex
from repro.dfg import OpKind, UnitClass, unit_class
from repro.etpn import default_design
from repro.synth import run_camad, run_ours


class TestRegistry:
    def test_all_names(self):
        assert names() == ["ar", "dct", "diffeq", "ewf", "ex", "fir8",
                           "iir", "paulin", "tseng"]

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            load("nonexistent")

    @pytest.mark.parametrize("name", ["ex", "dct", "diffeq", "ewf",
                                      "paulin", "tseng"])
    def test_all_build_and_validate(self, name):
        dfg = load(name)
        default_design(dfg).validate()


class TestExAgainstTable1:
    def test_operation_identities(self):
        dfg = load("ex")
        mults = {o for o, op in dfg.operations.items()
                 if op.kind == OpKind.MUL}
        assert mults == {"N21", "N22", "N24", "N28"}
        subs = {o for o, op in dfg.operations.items()
                if op.kind == OpKind.SUB}
        assert subs == {"N25", "N27", "N29"}
        assert dfg.operation("N30").kind == OpKind.ADD

    def test_variable_set(self):
        dfg = load("ex")
        assert set(dfg.variables) == set("abcdefuvwxyz")

    def test_camad_register_count_is_twelve(self):
        # Table 1's CAMAD row lists one register per variable.
        dfg = load("ex")
        assert sum(v.needs_register() for v in dfg.variables.values()) == 12

    def test_paper_module_groups_are_class_compatible(self):
        dfg = load("ex")
        for group in ex.PAPER_OURS_MODULE_GROUPS:
            classes = {unit_class(dfg.operation(o).kind) for o in group}
            assert len(classes) == 1

    def test_paper_module_groups_are_chain_ordered(self):
        """Ops sharing a module must admit distinct steps: within each
        published group there is a dependence chain or independence —
        never a same-step *requirement*."""
        from repro.dfg.analysis import critical_path_length
        dfg = load("ex")
        assert critical_path_length(dfg) >= 4


class TestDctAgainstTable2:
    def test_operation_identities(self):
        dfg = load("dct")
        mults = {o for o, op in dfg.operations.items()
                 if op.kind == OpKind.MUL}
        assert mults == {"N31", "N33", "N35", "N38", "N40"}
        adds = {o for o, op in dfg.operations.items()
                if op.kind == OpKind.ADD}
        assert adds == {"N27", "N29", "N37", "N42", "N43", "N44"}
        subs = {o for o, op in dfg.operations.items()
                if op.kind == OpKind.SUB}
        assert subs == {"N28", "N30"}

    def test_variable_set(self):
        dfg = load("dct")
        expected = set("abcdefghij") | {"p1", "p2", "p3", "p4",
                                        "q2", "q3", "q4"}
        assert set(dfg.variables) == expected

    def test_paper_module_groups_are_class_compatible(self):
        dfg = load("dct")
        for group in dct.PAPER_OURS_MODULE_GROUPS:
            classes = {unit_class(dfg.operation(o).kind) for o in group}
            assert len(classes) == 1


class TestDiffeqAgainstTable3:
    def test_operation_identities(self):
        dfg = load("diffeq")
        mults = {o for o, op in dfg.operations.items()
                 if op.kind == OpKind.MUL}
        assert mults == {"N26", "N27", "N29", "N31", "N33", "N35"}
        assert dfg.operation("N24").kind == OpKind.LT

    def test_variable_set(self):
        dfg = load("diffeq")
        expected = {"x", "y", "u", "dx", "a1", "b", "c", "d", "e", "f",
                    "g", "u1", "y1", "x1", "cond"}
        assert set(dfg.variables) == expected

    def test_u1_accumulates(self):
        dfg = load("diffeq")
        assert dfg.defs_of("u1") == ["N25", "N30"]

    def test_loop_condition(self):
        dfg = load("diffeq")
        assert dfg.loop_condition == "cond"

    def test_paper_module_groups_are_class_compatible(self):
        dfg = load("diffeq")
        for group in diffeq.PAPER_OURS_MODULE_GROUPS:
            classes = {unit_class(dfg.operation(o).kind) for o in group}
            assert len(classes) == 1


class TestEwfShape:
    def test_operation_mix(self):
        dfg = load("ewf")
        counts = dfg.op_count_by_class()
        assert counts[UnitClass.ALU] == 26
        assert counts[UnitClass.MULTIPLIER] == 8

    def test_deep_critical_path(self):
        from repro.dfg.analysis import critical_path_length
        assert critical_path_length(load("ewf")) >= 10


class TestSynthesisOnBenchmarks:
    @pytest.mark.parametrize("name", TABLE_BENCHMARKS)
    def test_ours_runs(self, name):
        result = run_ours(load(name))
        result.design.validate()
        assert result.iterations > 0

    @pytest.mark.parametrize("name", TABLE_BENCHMARKS)
    def test_ours_beats_default_on_hardware(self, name):
        from repro.cost import CostModel
        dfg = load(name)
        model = CostModel(bits=8)
        base = default_design(dfg)
        ours = run_ours(dfg, cost_model=model).design
        assert (model.hardware_total(ours.datapath)
                < model.hardware_total(base.datapath))

    @pytest.mark.parametrize("name", EXTRA_BENCHMARKS)
    def test_extra_benchmarks_flows(self, name):
        dfg = load(name)
        run_camad(dfg).design.validate()
