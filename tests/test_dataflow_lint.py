"""Tests for the dataflow lint layer (DFA001-DFA006)."""

from __future__ import annotations

from repro.analysis.dataflow import AbstractValue, analyze_dataflow
from repro.bench import load, names
from repro.dfg import DFGBuilder
from repro.lint import (LintReport, Severity, all_rules, lint_dataflow,
                        lint_design)
from repro.lint.registry import LintContext, run_layer
from repro.lint.rules_dataflow import CERTIFICATE_KEY, cached_dataflow


def codes(report: LintReport) -> set[str]:
    return {d.code for d in report}


def pathological():
    """One 4-bit DFG tripping DFA001/002/003/004 at once.

    * N2 adds two values whose minimum sum exceeds 15 (DFA001);
    * N3 ANDs with 0 — always-constant non-trivial result (DFA002);
    * N4 compares provably-ordered ranges (DFA003);
    * output ``low`` keeps proved-constant high bits (DFA004).
    """
    b = DFGBuilder("path")
    b.inputs("a")
    b.op("N1", "|", "big", "a", 12)         # big in [12, 15]
    b.op("N2", "+", "wrap", "big", "big")   # min sum 24 > 15
    b.op("N3", "&", "zero", "a", 0)         # always 0
    b.op("N4", "<", "c", "zero", 1)         # always true (0 < 1)
    b.op("N5", ">>", "low", "a", 2)         # high bits proved 0
    b.outputs("wrap", "zero", "low")
    return b.build()


class TestRegistration:
    def test_dfa_rules_registered(self):
        registered = {r.code for r in all_rules()}
        assert {"DFA001", "DFA002", "DFA003", "DFA004", "DFA005",
                "DFA006"} <= registered

    def test_dfa_layer_and_severities(self):
        by_code = {r.code: r for r in all_rules()
                   if r.code.startswith("DFA")}
        assert all(r.layer == "dataflow" for r in by_code.values())
        assert by_code["DFA006"].severity is Severity.ERROR
        assert by_code["DFA001"].severity is Severity.WARNING
        assert by_code["DFA004"].severity is Severity.INFO


class TestRules:
    def test_pathological_design_trips_value_rules(self):
        report = lint_dataflow(pathological(), bits=4)
        found = codes(report)
        assert {"DFA001", "DFA002", "DFA003", "DFA004"} <= found
        assert "DFA006" not in found  # the certificate itself is sound

    def test_over_provisioned_width(self):
        # With unconstrained inputs the entry facts span the full word,
        # so DFA005 fires through a certificate carrying input
        # assumptions (what the CLI's --input-bits produces).
        b = DFGBuilder("narrow")
        b.inputs("a", "b")
        b.op("N1", "+", "out", "a", "b")
        b.outputs("out")
        dfg = b.build()
        ctx = LintContext(name=dfg.name, dfg=dfg, bits=16)
        ctx.cache[CERTIFICATE_KEY] = analyze_dataflow(
            dfg, 16, assumptions={"a": (0, 3), "b": (0, 3)})
        report = run_layer("dataflow", ctx)
        assert "DFA005" in codes(report)

    def test_benchmarks_have_no_dataflow_errors(self):
        for name in names():
            report = lint_dataflow(load(name), bits=8)
            assert not report.errors(), (name, report.summary())

    def test_loop_condition_gets_special_message(self):
        b = DFGBuilder("foreverloop")
        b.inputs("x", "dx")
        b.op("N1", "+", "x1", "x", "dx")
        b.op("N2", ">=", "c", "x1", 0)  # always true: never terminates
        b.loop("c")
        b.outputs("x1")
        report = lint_dataflow(b.build(), bits=8)
        dfa3 = [d for d in report if d.code == "DFA003"]
        assert dfa3 and "never terminates" in dfa3[0].message

    def test_unsound_certificate_trips_dfa006(self):
        dfg = pathological()
        ctx = LintContext(name=dfg.name, dfg=dfg, bits=4)
        cert = analyze_dataflow(dfg, 4)
        # Poison one fact so independent re-simulation must catch it.
        cert.op_facts["N1"] = AbstractValue.const(0, 4)
        ctx.cache[CERTIFICATE_KEY] = cert
        report = run_layer("dataflow", ctx)
        assert "DFA006" in codes(report)


class TestMemoisation:
    def test_certificate_computed_once_per_context(self):
        dfg = pathological()
        ctx = LintContext(name=dfg.name, dfg=dfg, bits=4)
        first = cached_dataflow(ctx)
        assert first is not None
        assert cached_dataflow(ctx) is first
        assert ctx.cache[CERTIFICATE_KEY] is first

    def test_no_dfg_yields_no_certificate(self):
        ctx = LintContext(name="empty", dfg=None, bits=8)
        assert cached_dataflow(ctx) is None
        report = run_layer("dataflow", ctx)
        assert not list(report)


class TestDesignIntegration:
    def test_lint_design_runs_dataflow_layer(self):
        from repro.etpn import default_design
        design = default_design(pathological())
        report = lint_design(design, bits=4)
        assert "DFA001" in codes(report)

    def test_lint_design_default_bits_clean_benchmark(self):
        from repro.etpn import default_design
        report = lint_design(default_design(load("diffeq")), bits=8)
        assert not [d for d in report if d.code.startswith("DFA")
                    and d.severity is Severity.ERROR]
