"""Tests for the ``repro-hlts lint`` subcommand."""

from __future__ import annotations

import json

from repro.cli import main

HDL_SOURCE = """\
design tiny;
input a, b;
output z;
begin
  T1: z := a + b;
end
"""


class TestLintCli:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "DFG001" in out and "GAT001" in out and "TST001" in out

    def test_single_benchmark_text(self, capsys):
        assert main(["lint", "ex", "--no-gates"]) == 0
        out = capsys.readouterr().out
        assert "== ex:" in out and "[ok]" in out

    def test_all_paper_benchmarks_pass(self, capsys):
        assert main(["lint", "ex", "dct", "diffeq", "ewf", "paulin",
                     "tseng", "--no-gates"]) == 0

    def test_json_format(self, capsys):
        assert main(["lint", "ex", "--no-gates", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert data["targets"][0]["name"] == "ex"
        assert "diagnostics" in data["targets"][0]

    def test_strict_fails_on_warnings(self, capsys):
        # diffeq's default design carries module-register self-loops
        # (TST001), so warnings-as-errors must flip the exit status.
        assert main(["lint", "diffeq", "--no-gates", "--strict"]) == 1
        assert "[FAIL]" in capsys.readouterr().out

    def test_hdl_file_target(self, tmp_path, capsys):
        source = tmp_path / "tiny.hdl"
        source.write_text(HDL_SOURCE)
        assert main(["lint", str(source), "--no-gates"]) == 0
        assert "tiny" in capsys.readouterr().out

    def test_unknown_target(self, capsys):
        assert main(["lint", "no-such-benchmark"]) == 2
        assert "neither" in capsys.readouterr().err

    def test_directory_target_rejected(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path)]) == 2
        assert "neither" in capsys.readouterr().err

    def test_uncompilable_hdl_reported_as_diagnostic(self, tmp_path, capsys):
        source = tmp_path / "bad.hdl"
        source.write_text("design broken;\ninput a\nNOT HDL {{{\n")
        assert main(["lint", str(source), "ex", "--no-gates"]) == 1
        out = capsys.readouterr().out
        assert "LNT001" in out and "cannot compile" in out
        assert "== ex:" in out  # the run continues past the broken target

    def test_gate_layer_runs(self, capsys):
        assert main(["lint", "ex", "--bits", "4"]) == 0
        assert "== ex:" in capsys.readouterr().out
