"""Shared fixtures: small hand-built DFGs used across the test suite."""

from __future__ import annotations

import pytest

from repro.dfg import DFGBuilder
from repro.runtime.chaos import ChaosInjector


@pytest.fixture
def chaos():
    """Activate chaos injections for one test, deactivating on exit.

    Usage::

        def test_something(chaos):
            chaos(Injection("synth.candidate_eval", ACTION_RAISE))
            ...  # the injector is active for the rest of the test
    """
    active: list[ChaosInjector] = []

    def activate(*injections, seed: int = 0) -> ChaosInjector:
        injector = ChaosInjector(*injections, seed=seed)
        injector.__enter__()
        active.append(injector)
        return injector

    yield activate
    for injector in active:
        injector.__exit__(None, None, None)


@pytest.fixture
def chain_dfg():
    """Three-op chain: x = a*b; y = x+c; z = y-d."""
    b = DFGBuilder("chain")
    b.inputs("a", "b", "c", "d")
    b.op("N1", "*", "x", "a", "b")
    b.op("N2", "+", "y", "x", "c")
    b.op("N3", "-", "z", "y", "d")
    b.outputs("z")
    return b.build()


@pytest.fixture
def diamond_dfg():
    """Diamond: two independent mults feeding an add."""
    b = DFGBuilder("diamond")
    b.inputs("a", "b", "c", "d")
    b.op("N1", "*", "x", "a", "b")
    b.op("N2", "*", "y", "c", "d")
    b.op("N3", "+", "z", "x", "y")
    b.outputs("z")
    return b.build()


@pytest.fixture
def multidef_dfg():
    """Accumulating variable: u1 = u - e; u1 = u1 - f (as in Diffeq)."""
    b = DFGBuilder("multidef")
    b.inputs("u", "e", "f")
    b.op("N1", "-", "u1", "u", "e")
    b.op("N2", "-", "u1", "u1", "f")
    b.outputs("u1")
    return b.build()


@pytest.fixture
def loop_dfg():
    """Loop body with a comparison driving the back edge."""
    b = DFGBuilder("loop")
    b.inputs("x", "dx", "a")
    b.op("N1", "+", "x1", "x", "dx")
    b.compare("N2", "<", "c", "x1", "a")
    b.outputs("x1")
    b.loop("c")
    return b.build()
