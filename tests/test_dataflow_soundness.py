"""Property-based soundness of the dataflow engine (hypothesis).

The central contract: for any randomly generated DFG (straight-line or
looped, over every transferable operation kind) and any random concrete
vectors, every simulated value lies inside the certificate's derived
facts — :meth:`DataflowCertificate.check` is an independent concrete
re-simulation, so an empty problem list *is* the property.

Plus the narrowing-rejection regression: when the equivalence certifier
cannot certify a design point, :func:`repro.cost.narrow_design` must
refuse (``applied=False``, baseline area kept) rather than report a
saving for an unproved behaviour.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis.dataflow import (AbstractValue, analyze_dataflow,
                                     transfer)
from repro.cost import narrow_design
from repro.dfg import DFGBuilder, OpKind
from repro.dfg.ops import arity
from repro.etpn import default_design
from repro.rtl import apply_op
from repro.rtl.semantics import mask

_KINDS = [OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.DIV, OpKind.AND,
          OpKind.OR, OpKind.XOR, OpKind.NOT, OpKind.SHL, OpKind.SHR,
          OpKind.LT, OpKind.GT, OpKind.LE, OpKind.GE, OpKind.EQ, OpKind.NE,
          OpKind.MOVE]


@st.composite
def analysable_dfgs(draw):
    """Random DFGs over every kind, sometimes looped via ``v1`` naming.

    Operands are earlier values, inputs, or literals; conditions come
    from comparisons.  A looped variant writes ``i0``'s next state to
    ``i01`` so :func:`infer_feedback` recognises the pair.
    """
    num_inputs = draw(st.integers(2, 4))
    num_ops = draw(st.integers(1, 10))
    builder = DFGBuilder("prop")
    inputs = [f"i{k}" for k in range(num_inputs)]
    builder.inputs(*inputs)
    available = list(inputs)  # data values only — condition vars are
    comparisons: list[str] = []  # never readable as operands
    for index in range(num_ops):
        kind = draw(st.sampled_from(_KINDS))
        lhs = draw(st.sampled_from(available))
        if draw(st.booleans()):
            rhs: object = draw(st.sampled_from(available))
        else:
            rhs = draw(st.integers(0, 255))
        target = f"v{index}"
        if arity(kind) == 1:
            builder.op(f"N{index}", kind, target, lhs)
        else:
            builder.op(f"N{index}", kind, target, lhs, rhs)
        if kind in (OpKind.LT, OpKind.GT, OpKind.LE, OpKind.GE, OpKind.EQ,
                    OpKind.NE):
            comparisons.append(target)  # a condition variable
        else:
            available.append(target)
    if comparisons and draw(st.booleans()):
        # Loop-carried pair: next-state of input i0, recognised by the
        # ``<var>1`` naming convention.
        builder.op("Nfb", OpKind.MOVE, "i01", available[-1])
        builder.loop(comparisons[-1])
        builder.outputs("i01")
    else:
        builder.outputs(available[-1])
    return builder.build()


@settings(max_examples=120, deadline=None)
@given(analysable_dfgs(), st.sampled_from([4, 8, 16]),
       st.integers(0, 2 ** 31))
def test_certificate_always_sound(dfg, bits, seed):
    cert = analyze_dataflow(dfg, bits)
    assert cert.check(dfg, vectors=24, seed=seed) == [], \
        f"unsound facts for {dfg.name}@{bits}b"


@settings(max_examples=80, deadline=None)
@given(analysable_dfgs(), st.integers(0, 2 ** 31))
def test_certificate_sound_under_assumptions(dfg, seed):
    assumptions = {v.name: (0, 7) for v in dfg.inputs()}
    cert = analyze_dataflow(dfg, 8, assumptions=assumptions)
    assert cert.check(dfg, vectors=24, seed=seed) == []


@settings(max_examples=150, deadline=None)
@given(st.sampled_from(_KINDS),
       st.integers(0, 255), st.integers(0, 255),
       st.integers(0, 255), st.integers(0, 255),
       st.integers(0, 255), st.integers(0, 255))
def test_transfer_sound_on_sampled_members(kind, av, bv, lo_a, km_a,
                                           lo_b, km_b):
    """Build abstractions guaranteed to contain (av, bv); the concrete
    result must be inside the transferred abstraction."""
    bits = 8
    m = mask(bits)

    def containing(value: int, lo: int, km: int) -> AbstractValue:
        from repro.analysis.dataflow import reduce
        lo = min(lo, value)
        hi = max(lo, value) if lo <= value else value
        hi = max(hi, value)
        return reduce(lo, min(hi + (km & 0xF), m), km, value & km, bits)

    a = containing(av, lo_a, km_a)
    b = containing(bv, lo_b, km_b)
    if not (a.contains(av) and b.contains(bv)):
        return  # reduction tightened past the witness; nothing to check
    result = transfer(kind, a, b, bits)
    concrete = apply_op(kind, av, 0 if arity(kind) == 1 else bv, bits)
    assert result.contains(concrete)


class TestNarrowingRejection:
    """Narrowing must refuse when equivalence cannot be certified."""

    def _design(self):
        b = DFGBuilder("nr")
        b.inputs("a", "b")
        b.op("N1", "+", "t", "a", "b")
        b.op("N2", "*", "out", "t", "t")
        b.outputs("out")
        return default_design(b.build())

    def test_invalid_certificate_refuses(self, monkeypatch):
        import repro.analysis.equivalence as eq

        class FakeCert:
            valid = False
            divergences = ["out: mismatch"]

        monkeypatch.setattr(eq, "certify",
                            lambda dfg, steps, binding: FakeCert())
        design = self._design()
        report = narrow_design(design, 8)
        assert not report.applied
        assert "divergence" in report.reason
        assert report.narrowed == report.baseline
        assert report.area_delta_mm2 == 0.0

    def test_certifier_crash_refuses(self, monkeypatch):
        import repro.analysis.equivalence as eq

        def boom(dfg, steps, binding):
            raise RuntimeError("cannot certify")

        monkeypatch.setattr(eq, "certify", boom)
        design = self._design()
        report = narrow_design(design, 8)
        assert not report.applied
        assert "cannot certify" in report.reason
        assert report.narrowed == report.baseline

    def test_valid_certificate_applies(self):
        design = self._design()
        report = narrow_design(design, 16,
                               assumptions={"a": (0, 15), "b": (0, 15)})
        assert report.applied and report.equivalence_valid
        assert report.narrowed.total_mm2 < report.baseline.total_mm2
