"""Unit tests for the Petri net structure and firing rules."""

import pytest

from repro.errors import PetriNetError
from repro.petri import Guard, PetriNet


def simple_net():
    net = PetriNet("simple")
    net.add_place("P0", delay=1)
    net.add_place("P1", delay=1)
    net.add_place("P2", delay=0)
    net.add_transition("t0", ["P0"], ["P1"])
    net.add_transition("t1", ["P1"], ["P2"])
    net.set_initial("P0")
    net.set_final("P2")
    return net


class TestStructure:
    def test_duplicate_place(self):
        net = PetriNet("n")
        net.add_place("P0")
        with pytest.raises(PetriNetError):
            net.add_place("P0")

    def test_negative_delay(self):
        net = PetriNet("n")
        with pytest.raises(PetriNetError):
            net.add_place("P0", delay=-1)

    def test_transition_unknown_place(self):
        net = PetriNet("n")
        net.add_place("P0")
        with pytest.raises(PetriNetError):
            net.add_transition("t0", ["P0"], ["P9"])

    def test_transition_needs_inputs(self):
        net = PetriNet("n")
        net.add_place("P0")
        with pytest.raises(PetriNetError):
            net.add_transition("t0", [], ["P0"])

    def test_initial_unknown_place(self):
        net = PetriNet("n")
        net.add_place("P0")
        with pytest.raises(PetriNetError):
            net.set_initial("P9")

    def test_validate_requires_initial(self):
        net = PetriNet("n")
        net.add_place("P0")
        with pytest.raises(PetriNetError):
            net.validate()


class TestFiring:
    def test_enabled(self):
        net = simple_net()
        enabled = net.enabled(net.initial_marking)
        assert [t.trans_id for t in enabled] == ["t0"]

    def test_fire_moves_token(self):
        net = simple_net()
        after = net.fire(net.initial_marking, net.transitions["t0"])
        assert after == frozenset({"P1"})

    def test_fire_not_enabled(self):
        net = simple_net()
        with pytest.raises(PetriNetError):
            net.fire(frozenset({"P1"}), net.transitions["t0"])

    def test_fire_safeness_violation(self):
        net = PetriNet("unsafe")
        net.add_place("P0")
        net.add_place("P1")
        net.add_transition("t0", ["P0"], ["P1"])
        with pytest.raises(PetriNetError):
            net.fire(frozenset({"P0", "P1"}), net.transitions["t0"])

    def test_final_detection(self):
        net = simple_net()
        assert net.is_final(frozenset({"P2"}))
        assert not net.is_final(frozenset({"P0"}))

    def test_guard_complement(self):
        g = Guard("c")
        assert g.complement() == Guard("c", negated=True)
        assert g.complement().complement() == g

    def test_conditions_collected(self):
        net = simple_net()
        net.add_transition("t2", ["P2"], ["P0"], guard=Guard("loop"))
        assert net.conditions() == {"loop"}
