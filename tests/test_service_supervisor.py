"""The supervisor: dispatch order, retry/backoff, quarantine, stop,
process isolation and hung-worker reaping.

Most tests monkeypatch ``repro.service.supervisor._execute_request``
with a synthetic evaluator — the supervision machinery (WAL protocol,
queueing, retries) is what is under test, not synthesis.  A few
integration tests at the bottom run the real pipeline on the quick
config.  Process-mode tests rely on the ``fork`` start method
inheriting the monkeypatch into the worker.
"""

from __future__ import annotations

import time

import pytest

from repro.service import (JobRequest, RetryPolicy, Spool, Supervisor,
                           backoff_delay)
from repro.service import supervisor as supervisor_module

QUICK = dict(flow="ours", bits=4, fault_fraction=0.25, max_sequences=4,
             saturation=2, sequence_length=6, max_backtracks=16)


def _submit(spool, benchmark="ex", **overrides):
    jid, _ = spool.submit(JobRequest(benchmark=benchmark,
                                     **{**QUICK, **overrides}))
    return jid


def _fake_record(request):
    return {"format": "repro-journal-v1", "kind": "cell",
            "benchmark": request.benchmark, "flow": request.flow,
            "bits": request.bits, "row": {"ok": True}, "alloc": []}


def _fast(spool, **kwargs):
    kwargs.setdefault("retry", RetryPolicy(backoff_base=0.0))
    kwargs.setdefault("poll_seconds", 0.01)
    return Supervisor(spool, **kwargs)


class TestBackoff:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy()
        assert backoff_delay("j", 2, policy) == backoff_delay("j", 2,
                                                              policy)

    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_cap=4.0,
                             jitter=0.0)
        delays = [backoff_delay("j", n, policy) for n in (1, 2, 3, 4)]
        assert delays == [1.0, 2.0, 4.0, 4.0]

    def test_jitter_is_bounded_and_per_job(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_cap=100.0,
                             jitter=0.5)
        delay_a, delay_b = (backoff_delay(j, 1, policy) for j in "ab")
        assert 1.0 <= delay_a <= 1.5 and 1.0 <= delay_b <= 1.5
        assert delay_a != delay_b

    def test_zero_base_means_immediate_retry(self):
        assert backoff_delay("j", 5, RetryPolicy(backoff_base=0.0)) == 0.0


class TestInlineDispatch:
    def test_jobs_run_in_fifo_submit_order(self, tmp_path, monkeypatch):
        spool = Spool(tmp_path)
        jobs = [_submit(spool, bits=bits) for bits in (4, 8, 16)]
        ran = []
        monkeypatch.setattr(
            supervisor_module, "_execute_request",
            lambda request, cache: (ran.append(request.bits),
                                    _fake_record(request))[1])
        outcome = _fast(spool).run()
        assert ran == [4, 8, 16] and outcome.done == 3
        assert all(spool.states()[j].state == "done" for j in jobs)

    def test_transient_failure_is_retried_to_success(self, tmp_path,
                                                     monkeypatch):
        spool = Spool(tmp_path)
        jid = _submit(spool)
        calls = {"n": 0}

        def flaky(request, cache):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return _fake_record(request)

        monkeypatch.setattr(supervisor_module, "_execute_request", flaky)
        outcome = _fast(spool).run()
        state = spool.states()[jid]
        assert outcome.retried == 1 and outcome.done == 1
        assert state.state == "done" and state.attempts == 2

    def test_persistent_failure_quarantines_while_queue_drains(
            self, tmp_path, monkeypatch):
        spool = Spool(tmp_path)
        poison = _submit(spool, bits=4)
        healthy = _submit(spool, bits=8)

        def poisoned(request, cache):
            if request.bits == 4:
                raise RuntimeError("always broken")
            return _fake_record(request)

        monkeypatch.setattr(supervisor_module, "_execute_request",
                            poisoned)
        outcome = _fast(spool, retry=RetryPolicy(
            max_attempts=3, backoff_base=0.0)).run()
        states = spool.states()
        assert states[poison].state == "quarantined"
        assert states[poison].attempts == 3
        assert "always broken" in states[poison].reason
        assert states[healthy].state == "done"
        assert outcome.quarantined == 1 and not outcome.ok()

    def test_failed_job_requeues_at_the_tail(self, tmp_path, monkeypatch):
        spool = Spool(tmp_path)
        flaky_job = _submit(spool, bits=4)
        steady_job = _submit(spool, bits=8)
        ran = []

        def flaky(request, cache):
            ran.append(request.bits)
            if request.bits == 4 and ran.count(4) == 1:
                raise RuntimeError("transient")
            return _fake_record(request)

        monkeypatch.setattr(supervisor_module, "_execute_request", flaky)
        _fast(spool).run()
        # the failed 4-bit job must not starve the 8-bit one: retry at
        # the back of the queue
        assert ran == [4, 8, 4]
        assert spool.states()[flaky_job].state == "done"
        assert spool.states()[steady_job].state == "done"

    def test_cancel_during_run_skips_the_dequeued_job(self, tmp_path,
                                                      monkeypatch):
        spool = Spool(tmp_path)
        first = _submit(spool, bits=4)
        second = _submit(spool, bits=8)

        def cancelling(request, cache):
            if request.bits == 4:
                spool.cancel(second)  # lands while first is running
            return _fake_record(request)

        monkeypatch.setattr(supervisor_module, "_execute_request",
                            cancelling)
        outcome = _fast(spool).run()
        assert outcome.skipped_cancelled == 1 and outcome.processed == 1
        assert spool.states()[first].state == "done"
        assert spool.states()[second].state == "cancelled"

    def test_submissions_during_a_run_are_picked_up(self, tmp_path,
                                                    monkeypatch):
        spool = Spool(tmp_path)
        _submit(spool, bits=4)

        def submitting(request, cache):
            if request.bits == 4:
                _submit(spool, bits=8)  # a client submits mid-drain
            return _fake_record(request)

        monkeypatch.setattr(supervisor_module, "_execute_request",
                            submitting)
        outcome = _fast(spool).run()
        assert outcome.done == 2 and outcome.drained

    def test_resubmitting_a_done_job_is_free(self, tmp_path, monkeypatch):
        monkeypatch.setattr(supervisor_module, "_execute_request",
                            lambda request, cache: _fake_record(request))
        spool = Spool(tmp_path)
        _submit(spool)
        assert _fast(spool).run().processed == 1
        _submit(spool)  # identical content -> same id -> still done
        outcome = _fast(spool).run()
        assert outcome.processed == 0 and outcome.drained


class TestStop:
    def test_request_stop_finishes_current_job_then_drains(
            self, tmp_path, monkeypatch):
        spool = Spool(tmp_path)
        jobs = [_submit(spool, bits=bits) for bits in (4, 8, 16)]
        supervisor = _fast(spool)

        def stopping(request, cache):
            supervisor.request_stop("SIGTERM")
            return _fake_record(request)

        monkeypatch.setattr(supervisor_module, "_execute_request",
                            stopping)
        outcome = supervisor.run()
        assert outcome.stopped_reason == "SIGTERM"
        assert outcome.processed == 1 and not outcome.drained
        states = spool.states()
        assert states[jobs[0]].state == "done"
        assert states[jobs[1]].state == states[jobs[2]].state == "submitted"
        # a fresh supervisor finishes the remainder
        restarted = _fast(spool).run()
        assert restarted.done == 2 and restarted.drained

    def test_keyboard_interrupt_requeues_and_stops(self, tmp_path,
                                                   monkeypatch):
        spool = Spool(tmp_path)
        jid = _submit(spool)
        calls = {"n": 0}

        def interrupted(request, cache):
            calls["n"] += 1
            if calls["n"] == 1:
                raise KeyboardInterrupt
            return _fake_record(request)

        monkeypatch.setattr(supervisor_module, "_execute_request",
                            interrupted)
        outcome = _fast(spool).run()
        assert outcome.stopped_reason == "interrupt"
        assert spool.states()[jid].state == "submitted"  # not charged
        restarted = _fast(spool).run()
        assert restarted.done == 1
        assert spool.states()[jid].state == "done"


class TestProcessMode:
    def test_isolated_worker_completes_a_job(self, tmp_path, monkeypatch):
        monkeypatch.setattr(supervisor_module, "_execute_request",
                            lambda request, cache: _fake_record(request))
        spool = Spool(tmp_path)
        jid = _submit(spool)
        outcome = _fast(spool, isolate=True).run()
        assert outcome.done == 1
        assert spool.states()[jid].state == "done"
        assert spool.read_result(jid) is not None

    def test_crashing_worker_is_charged_as_a_failure(self, tmp_path,
                                                     monkeypatch):
        def dying(request, cache):
            raise RuntimeError("worker blew up")

        monkeypatch.setattr(supervisor_module, "_execute_request", dying)
        spool = Spool(tmp_path)
        jid = _submit(spool)
        outcome = _fast(spool, isolate=True, retry=RetryPolicy(
            max_attempts=1, backoff_base=0.0)).run()
        state = spool.states()[jid]
        assert outcome.quarantined == 1
        assert state.state == "quarantined"
        assert "exited with code" in state.reason

    def test_hung_worker_is_reaped_and_quarantined(self, tmp_path,
                                                   monkeypatch):
        def hanging(request, cache):
            time.sleep(60)

        monkeypatch.setattr(supervisor_module, "_execute_request", hanging)
        spool = Spool(tmp_path)
        jid = _submit(spool, deadline_seconds=0.1)
        started = time.perf_counter()
        outcome = _fast(spool, isolate=True, deadline_grace=1.0,
                        reap_floor_seconds=0.3,
                        retry=RetryPolicy(max_attempts=1,
                                          backoff_base=0.0)).run()
        elapsed = time.perf_counter() - started
        state = spool.states()[jid]
        assert outcome.reaped == 1
        assert state.state == "quarantined"
        assert "reaped: exceeded deadline" in state.reason
        assert elapsed < 30  # the 60s hang did not block the queue


@pytest.mark.slow
class TestRealEvaluation:
    def test_real_job_produces_a_renderable_cell(self, tmp_path):
        spool = Spool(tmp_path)
        jid = _submit(spool)
        outcome = _fast(spool).run()
        assert outcome.done == 1 and outcome.ok()
        record = spool.read_result(jid)
        assert record["kind"] == "cell"
        assert record["benchmark"] == "ex" and record["row"]

    def test_unknown_benchmark_quarantines_naturally(self, tmp_path):
        spool = Spool(tmp_path)
        jid, _ = spool.submit(JobRequest(benchmark="nope", bits=4))
        outcome = _fast(spool, retry=RetryPolicy(
            max_attempts=2, backoff_base=0.0)).run()
        assert outcome.quarantined == 1
        assert "unknown benchmark" in spool.states()[jid].reason
