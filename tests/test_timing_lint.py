"""Tests for the timing lint layer (TIM001-TIM006)."""

from __future__ import annotations

from repro.bench import load
from repro.etpn.from_dfg import default_design
from repro.gates import GateNetlist, GateType, expand_to_gates
from repro.gates.netlist import Gate
from repro.lint import (LintReport, Severity, all_rules, lint_pipeline,
                        lint_timing)
from repro.lint.registry import LintContext, run_layer
from repro.lint.rules_timing import REPORT_KEY, cached_timing
from repro.rtl import generate_rtl


def codes(report: LintReport) -> set[str]:
    return {d.code for d in report}


def simple_net():
    net = GateNetlist("simple")
    a = net.add_input("a")
    b = net.add_input("b")
    g1 = net.add(GateType.AND, (a, b))
    g2 = net.add(GateType.XOR, (g1, a))
    net.set_output("o", g2)
    return net


def ex_netlist(bits: int = 4):
    design = default_design(load("ex"))
    return expand_to_gates(generate_rtl(design, bits))


class TestRegistration:
    def test_tim_rules_registered(self):
        registered = {r.code for r in all_rules()}
        assert {"TIM001", "TIM002", "TIM003", "TIM004", "TIM005",
                "TIM006"} <= registered

    def test_tim_layer_and_severities(self):
        by_code = {r.code: r for r in all_rules()
                   if r.code.startswith("TIM")}
        assert all(r.layer == "timing" for r in by_code.values())
        assert by_code["TIM001"].severity is Severity.ERROR
        assert by_code["TIM002"].severity is Severity.WARNING
        assert by_code["TIM003"].severity is Severity.ERROR
        assert by_code["TIM006"].severity is Severity.WARNING


class TestRules:
    def test_tight_period_trips_tim001(self):
        report = lint_timing(simple_net(), bits=4, period=1.0)
        assert "TIM001" in codes(report)
        finding = next(d for d in report if d.code == "TIM001")
        assert "misses the period" in finding.message
        assert finding.hint

    def test_constant_cone_trips_tim002(self):
        net = GateNetlist("const")
        a = net.add_input("a")
        c0 = net.add(GateType.CONST0)
        net.set_output("o", net.add(GateType.AND, (c0, a)))
        report = lint_timing(net, bits=4)
        assert "TIM002" in codes(report)
        assert "TIM001" not in codes(report)

    def test_forged_cycle_trips_tim003(self):
        net = simple_net()
        base = len(net.gates)
        net.gates.append(Gate(base, GateType.AND, (0, base + 1)))
        net.gates.append(Gate(base + 1, GateType.AND, (base, 1)))
        report = lint_timing(net, bits=4)
        assert "TIM003" in codes(report)
        # no endpoint was timed, so no period/arrival findings ride along
        assert "TIM001" not in codes(report)

    def test_tight_period_trips_tim005(self):
        # A period far below what the library's delay_steps imply makes
        # every unit class measure deeper than its declared steps.
        report = lint_timing(ex_netlist(), bits=4, period=10.0)
        assert "TIM005" in codes(report)

    def test_preseeded_report_drives_tim004_and_tim006(self):
        # The default table always validates, so TIM004/TIM006 are
        # exercised through the memoisation seam: a hand-built report
        # planted under REPORT_KEY is what the rules must consume.
        from repro.analysis.timing.report import EndpointTiming, TimingReport
        rep = TimingReport(name="seeded", bits=4, period=50.0,
                           period_is_default=False, chain_allowance=5.0)
        rep.table_problems = ["and_ delay must be positive"]
        rep.endpoints = [EndpointTiming(name="deep", kind="output", gid=3,
                                        arrival=9.0, required=50.0,
                                        slack=41.0, levels=7)]
        ctx = LintContext(name="seeded", netlist=simple_net(), bits=4)
        ctx.cache[REPORT_KEY] = rep
        report = run_layer("timing", ctx)
        assert {"TIM004", "TIM006"} <= codes(report)
        tim6 = next(d for d in report if d.code == "TIM006")
        assert "9.00" in tim6.message

    def test_findings_capped(self):
        # 20 violating endpoints, MAX_FINDINGS reported.
        from repro.lint.rules_timing import MAX_FINDINGS
        net = GateNetlist("wide")
        a = net.add_input("a")
        b = net.add_input("b")
        for i in range(20):
            g = net.add(GateType.AND, (a, b))
            net.set_output(f"o{i}", g)
        report = lint_timing(net, bits=4, period=0.5)
        tim1 = [d for d in report if d.code == "TIM001"]
        assert len(tim1) == MAX_FINDINGS


class TestMemoisation:
    def test_report_computed_once_per_context(self):
        ctx = LintContext(name="simple", netlist=simple_net(), bits=4)
        first = cached_timing(ctx)
        assert first is not None
        assert cached_timing(ctx) is first
        assert ctx.cache[REPORT_KEY] is first

    def test_no_netlist_yields_none(self):
        ctx = LintContext(name="empty")
        assert cached_timing(ctx) is None
        report = run_layer("timing", ctx)
        assert not list(report)


class TestPipeline:
    def test_clean_benchmark_has_no_tim_errors(self):
        report = lint_pipeline(load("ex"), bits=4)
        tim = [d for d in report if d.code.startswith("TIM")]
        assert not [d for d in tim if d.severity is Severity.ERROR]

    def test_layer_listed(self):
        from repro.lint import LAYERS
        assert "timing" in LAYERS
