"""Unit tests for the behavioural HDL front end."""

import pytest

from repro.dfg import OpKind
from repro.errors import HDLSemanticError, HDLSyntaxError
from repro.hdl import compile_source, parse, tokenize
from repro.rtl import evaluate_dfg

DIFFEQ_SOURCE = """
design diffeq;
input x, y, u, dx, a1;
output x1, y1, u1;
begin
  N26: b := 3 * x;
  N27: c := u * dx;
  N29: d := 3 * y;
  N31: e := b * c;
  N33: f := d * dx;
  N35: g := u * dx;
  N25: u1 := u - e;
  N30: u1 := u1 - f;
  N34: y1 := y + g;
  N36: x1 := x + dx;
  loop while x1 < a1;
end
"""


class TestLexer:
    def test_token_kinds(self):
        tokens = tokenize("x := a + 3; -- comment\n")
        kinds = [t.kind for t in tokens]
        assert kinds == ["ident", ":=", "ident", "+", "number", ";", "eof"]

    def test_positions(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_multichar_operators(self):
        kinds = [t.kind for t in tokenize("a <= b == c != d >= e")]
        assert "<=" in kinds and "==" in kinds and "!=" in kinds \
            and ">=" in kinds

    def test_illegal_character(self):
        with pytest.raises(HDLSyntaxError):
            tokenize("a @ b")

    def test_comment_to_eol(self):
        tokens = tokenize("-- all comment\nx")
        assert [t.kind for t in tokens] == ["ident", "eof"]


class TestParser:
    def test_parse_design_structure(self):
        unit = parse(DIFFEQ_SOURCE)
        assert unit.name == "diffeq"
        assert unit.inputs == ["x", "y", "u", "dx", "a1"]
        assert unit.outputs == ["x1", "y1", "u1"]
        assert len(unit.statements) == 10
        assert unit.loop is not None

    def test_labels(self):
        unit = parse(DIFFEQ_SOURCE)
        assert unit.statements[0].label == "N26"
        assert unit.statements[0].target == "b"

    def test_precedence(self):
        unit = parse("design p; input a, b, c; output o;"
                     "begin o := a + b * c; end")
        expr = unit.statements[0].expr
        assert expr.op == "+"
        assert expr.rhs.op == "*"

    def test_parentheses(self):
        unit = parse("design p; input a, b, c; output o;"
                     "begin o := (a + b) * c; end")
        expr = unit.statements[0].expr
        assert expr.op == "*"
        assert expr.lhs.op == "+"

    def test_missing_semicolon(self):
        with pytest.raises(HDLSyntaxError):
            parse("design p; input a; output o; begin o := a end")

    def test_garbage_after_end(self):
        with pytest.raises(HDLSyntaxError):
            parse("design p; input a; output o; begin o := a; end extra")


class TestCompiler:
    def test_diffeq_matches_builder_version(self):
        from repro.bench import load
        compiled = compile_source(DIFFEQ_SOURCE)
        reference = load("diffeq")
        assert set(compiled.operations) >= set(reference.operations) - {"N24"}
        assert compiled.loop_condition == "_loop_cond"
        # Same arithmetic behaviour.
        inputs = {"x": 3, "y": 5, "u": 7, "dx": 2, "a1": 9}
        ours = evaluate_dfg(compiled, inputs, 8)
        theirs = evaluate_dfg(reference, inputs, 8)
        for var in ("x1", "y1", "u1"):
            assert ours[var] == theirs[var]

    def test_nested_expression_temporaries(self):
        dfg = compile_source("design n; input a, b, c, d; output o;"
                             "begin o := (a + b) * (c - d); end")
        kinds = {op.kind for op in dfg.operations.values()}
        assert kinds == {OpKind.ADD, OpKind.SUB, OpKind.MUL}
        # Temporaries wired through.
        assert evaluate_dfg(dfg, {"a": 2, "b": 3, "c": 9, "d": 4}, 8)["o"] \
            == 25

    def test_copy_statement_becomes_move(self):
        dfg = compile_source("design c; input a; output o;"
                             "begin o := a; end")
        assert dfg.operation("N1").kind == OpKind.MOVE

    def test_unary(self):
        dfg = compile_source("design u; input a; output o;"
                             "begin o := ~a; end")
        assert evaluate_dfg(dfg, {"a": 0b1010}, 4)["o"] == 0b0101

    def test_use_before_assignment(self):
        with pytest.raises(HDLSemanticError):
            compile_source("design b; input a; output o;"
                           "begin o := a + z; end")

    def test_unassigned_output(self):
        with pytest.raises(HDLSemanticError):
            compile_source("design b; input a; output o, p;"
                           "begin o := a + a; end")

    def test_port_both_directions(self):
        with pytest.raises(HDLSemanticError):
            compile_source("design b; input a; output a;"
                           "begin a := a + 1; end")

    def test_compiled_design_synthesises(self):
        from repro import synthesize
        dfg = compile_source(DIFFEQ_SOURCE)
        result = synthesize(dfg)
        result.design.validate()
