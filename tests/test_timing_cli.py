"""Tests for ``repro-hlts timing`` / ``bench-timing`` and the bench
harness behind them."""

from __future__ import annotations

import json

from repro.cli import main
from repro.harness.bench_timing import (SCHEMA, TARGET_SPEEDUP,
                                        scrub_cache_stats, time_cell)


class TestTimingCli:
    def test_default_flow_passes(self, capsys):
        assert main(["timing", "ex", "--flow", "default", "--bits", "4"]) == 0
        out = capsys.readouterr().out
        assert "== ex" in out and "[ok]" in out

    def test_ours_flow_passes(self, capsys):
        assert main(["timing", "ex", "--flow", "ours", "--bits", "4"]) == 0
        assert "[ok]" in capsys.readouterr().out

    def test_tight_period_fails(self, capsys):
        assert main(["timing", "ex", "--flow", "default", "--bits", "4",
                     "--period", "10"]) == 1
        out = capsys.readouterr().out
        assert "[FAIL]" in out and "VIOLATED" in out

    def test_verbose_prints_paths(self, capsys):
        assert main(["timing", "ex", "--flow", "default", "--bits", "4",
                     "-v"]) == 0
        assert "arrival" in capsys.readouterr().out

    def test_json_format(self, capsys):
        assert main(["timing", "ex", "--flow", "default", "--bits", "4",
                     "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True and data["flow"] == "default"
        target = data["targets"][0]
        assert target["target"] == "ex" and target["cmd_ok"] is True
        assert target["endpoints"]
        assert all(e["slack"] is None or e["slack"] >= 0
                   for e in target["endpoints"])

    def test_unknown_target_exits_2(self, capsys):
        assert main(["timing", "no-such-benchmark"]) == 2


class TestBenchHarness:
    def test_time_cell_warm_beats_cold(self):
        # repeats=1 keeps this a smoke test; the committed
        # BENCH_timing.json is generated with the full protocol.
        cell = time_cell("ex", 4, repeats=1)
        assert cell["benchmark"] == "ex" and cell["ok"]
        assert cell["reports_match"]
        assert cell["cold_seconds"] > 0 and cell["warm_seconds"] > 0
        # the merger perturbs a few cones, so warm hits most — not
        # necessarily all — of the post-merger netlist's cones
        assert 0 < cell["cone_hits_warm"] <= cell["cones_total"]
        assert cell["cone_hits_warm"] >= cell["cones_total"] // 2

    def test_scrub_cache_stats_makes_runs_comparable(self):
        cold = {"cone_hits": 0, "cone_misses": 7, "pruned_total": 3,
                "wns": 1.5,
                "endpoints": [{"name": "o", "cached": False,
                               "cone_size": 9, "pruned": 1, "slack": 2.0}]}
        warm = {"cone_hits": 7, "cone_misses": 0, "pruned_total": 0,
                "wns": 1.5,
                "endpoints": [{"name": "o", "cached": True,
                               "cone_size": 0, "pruned": 0, "slack": 2.0}]}
        assert scrub_cache_stats(cold) == scrub_cache_stats(warm)

    def test_schema_and_target_constants(self):
        assert SCHEMA.startswith("repro.bench_timing/")
        assert TARGET_SPEEDUP >= 5.0
