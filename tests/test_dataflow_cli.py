"""Tests for the ``dataflow`` CLI command and the bench harness."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestDataflowCommand:
    def test_single_benchmark_text(self, capsys):
        assert main(["dataflow", "diffeq", "--bits", "8"]) == 0
        out = capsys.readouterr().out
        assert "diffeq@8b" in out
        assert "check 64 vectors: ok" in out

    def test_multiple_widths(self, capsys):
        assert main(["dataflow", "ex", "--bits", "4", "8", "16"]) == 0
        out = capsys.readouterr().out
        assert "ex@4b" in out and "ex@8b" in out and "ex@16b" in out

    def test_json_format(self, capsys):
        assert main(["dataflow", "tseng", "--bits", "8",
                     "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        (cell,) = data["targets"]
        assert cell["name"] == "tseng" and cell["bits"] == 8
        for key in ("constant_ops", "known_bits", "max_required_width",
                    "loop_iterations", "widened", "check_problems"):
            assert key in cell
        assert cell["check_problems"] == []
        assert cell["narrowing"] is None

    def test_narrow_reports_delta(self, capsys):
        assert main(["dataflow", "tseng", "--bits", "16", "--narrow",
                     "--input-bits", "8", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        narrowing = data["targets"][0]["narrowing"]
        assert narrowing["applied"] is True
        assert narrowing["area_delta_mm2"] > 0

    def test_narrow_default_flow(self, capsys):
        assert main(["dataflow", "ex", "--bits", "8", "--narrow",
                     "--flow", "default"]) == 0
        assert "narrowing:" in capsys.readouterr().out

    def test_input_bits_tighten_widths(self, capsys):
        main(["dataflow", "fir8", "--bits", "16", "--format", "json"])
        wide = json.loads(capsys.readouterr().out)["targets"][0]
        main(["dataflow", "fir8", "--bits", "16", "--input-bits", "4",
              "--format", "json"])
        tight = json.loads(capsys.readouterr().out)["targets"][0]
        assert tight["max_required_width"] < wide["max_required_width"]

    def test_all_benchmarks_default(self, capsys):
        assert main(["dataflow", "--bits", "8", "--vectors", "16"]) == 0
        out = capsys.readouterr().out
        assert out.count("==") == 9  # one header per benchmark

    def test_unknown_target_exits_2(self, capsys):
        assert main(["dataflow", "nothere"]) == 2
        assert "neither a registered benchmark" in capsys.readouterr().err

    def test_verbose_prints_var_facts(self, capsys):
        assert main(["dataflow", "ex", "--bits", "8", "-v"]) == 0
        out = capsys.readouterr().out
        assert ":" in out and "==" in out

    def test_hdl_file_target(self, tmp_path, capsys):
        src = tmp_path / "tiny.hdl"
        src.write_text("design tiny; input a, b; output o;"
                       "begin o := a + b; end")
        assert main(["dataflow", str(src), "--bits", "8"]) == 0
        assert "tiny@8b" in capsys.readouterr().out


class TestBenchDataflowHarness:
    @pytest.fixture(scope="class")
    def cell(self):
        from repro.harness.bench_dataflow import time_cell
        return time_cell("tseng", 4, repeats=1, vectors=16, input_bits=4)

    def test_cell_keys(self, cell):
        for key in ("benchmark", "bits", "ops", "loop_iterations",
                    "analysis_cold_seconds", "analysis_warm_seconds",
                    "constant_ops", "known_bits", "max_required_width",
                    "check_ok", "flows", "prune"):
            assert key in cell, key
        assert cell["benchmark"] == "tseng" and cell["bits"] == 4

    def test_cell_certificates_check(self, cell):
        assert cell["check_ok"] is True
        assert cell["check_problems"] == []
        for flow in ("default", "ours"):
            assert cell["flows"][flow]["cert_check_ok"] is True

    def test_cell_prunes_faults(self, cell):
        prune = cell["prune"]
        assert prune["total_faults"] > 0
        assert 0 < prune["pruned"] < prune["total_faults"]
        assert prune["constant_lines"] > 0
