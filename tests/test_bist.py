"""Unit and integration tests for the BIST extension."""

import pytest

from repro.bench import load
from repro.bist import (LFSR, LaneMISR, PlanBistResult, bilbo_overhead_mm2,
                        evaluate_design_bist, evaluate_unit_bist, plan_bist,
                        taps_for, unit_netlist)
from repro.dfg import OpKind
from repro.errors import ATPGError
from repro.synth import run_camad, run_ours


class TestLFSR:
    def test_maximal_period_small_widths(self):
        for width in (2, 3, 4, 5, 6, 7, 8):
            lfsr = LFSR(width, seed=1)
            assert lfsr.period() == 2 ** width - 1

    def test_never_all_zero(self):
        lfsr = LFSR(4, seed=0)     # zero seed is corrected
        assert lfsr.state != 0
        for _ in range(40):
            assert lfsr.step() != 0

    def test_deterministic(self):
        assert LFSR(8, seed=5).sequence(20) == LFSR(8, seed=5).sequence(20)

    def test_unsupported_width(self):
        with pytest.raises(ATPGError):
            taps_for(999)


class TestLaneMISR:
    def test_same_stream_same_signature(self):
        a = LaneMISR(8)
        b = LaneMISR(8)
        for value in (0b1010, 0b0110, 0b1111):
            bits = [(value >> i) & 1 for i in range(4)]
            a.absorb([(-(bit)) & ((1 << 64) - 1) for bit in bits])
            b.absorb([(-(bit)) & ((1 << 64) - 1) for bit in bits])
        assert a.signature(0) == b.signature(0)
        assert a.differing_lanes() == 0

    def test_lane_independence(self):
        misr = LaneMISR(8)
        # Lane 3 sees a different stream than lane 0.
        lane3 = 1 << 3
        misr.absorb([lane3, 0, 0, 0])
        misr.absorb([0, 0, 0, 0])
        assert misr.differing_lanes() & lane3
        assert misr.signature(3) != misr.signature(0)

    def test_width_guard(self):
        with pytest.raises(ATPGError):
            LaneMISR(2).absorb([0, 0, 0])


class TestPlanning:
    def test_sessions_per_module(self):
        design = run_ours(load("ex")).design
        plan = plan_bist(design.datapath)
        assert len(plan.sessions) == design.binding.module_count()

    def test_conflicts_match_self_loops(self):
        design = run_camad(load("ex")).design
        plan = plan_bist(design.datapath)
        self_loops = design.datapath.self_loops()
        conflicted = {s.module for s in plan.conflicted_sessions()}
        assert conflicted == {module for module, _ in self_loops}

    def test_summary_fields(self):
        design = run_ours(load("diffeq")).design
        summary = plan_bist(design.datapath).summary()
        assert summary["sessions"] > 0
        assert summary["tpg"] > 0
        assert summary["misr"] > 0

    def test_overhead_grows_with_bits(self):
        design = run_ours(load("ex")).design
        plan = plan_bist(design.datapath)
        assert (bilbo_overhead_mm2(plan, 16)
                > bilbo_overhead_mm2(plan, 4) > 0.0)


class TestUnitBist:
    def test_adder_high_coverage(self):
        # 92% is the ceiling here: the LFSR never emits the all-zero
        # pattern, and the 4-bit MISR aliases a few faults.
        result = evaluate_unit_bist(OpKind.ADD, 4, patterns=15)
        assert result.total_faults > 40
        assert result.coverage > 90.0

    def test_signature_at_most_stream(self):
        result = evaluate_unit_bist(OpKind.MUL, 4, patterns=15)
        assert result.signature_detected <= result.stream_detected
        assert result.aliased >= 0

    def test_more_patterns_help(self):
        # Stream detection is monotone in pattern count; signature
        # detection is monotone-minus-aliasing (checked separately).
        short = evaluate_unit_bist(OpKind.MUL, 4, patterns=3)
        long = evaluate_unit_bist(OpKind.MUL, 4, patterns=15)
        assert long.stream_detected >= short.stream_detected

    def test_wide_misr_reduces_aliasing(self):
        narrow = evaluate_unit_bist(OpKind.MUL, 4, patterns=15,
                                    misr_width=4)
        wide = evaluate_unit_bist(OpKind.MUL, 4, patterns=15,
                                  misr_width=16)
        assert wide.aliased <= narrow.aliased

    def test_patterns_capped_at_lfsr_period(self):
        # Beyond the period the stream repeats and differences cancel
        # in the linear MISR; the session therefore caps the length.
        capped = evaluate_unit_bist(OpKind.ADD, 4, patterns=60)
        assert capped.cycles == 15
        full = evaluate_unit_bist(OpKind.ADD, 4, patterns=15)
        assert capped.signature_detected == full.signature_detected

    def test_unit_netlist_structure(self):
        net = unit_netlist(OpKind.ADD, 4)
        assert len(net.inputs) == 8
        assert len(net.outputs) == 4


class TestDesignBist:
    def test_full_design_plan(self):
        design = run_ours(load("ex")).design
        result = evaluate_design_bist(design, bits=4, patterns=15)
        assert isinstance(result, PlanBistResult)
        assert result.total_faults > 0
        assert 50.0 < result.coverage <= 100.0
        assert result.test_cycles == sum(s.cycles for s in result.sessions)
        assert result.overhead_mm2 > 0.0

    def test_merged_units_run_one_session_per_kind(self):
        design = run_ours(load("ex")).design
        result = evaluate_design_bist(design, bits=4, patterns=7)
        kinds_per_module = sum(
            len({design.dfg.operation(op).kind for op in m.ops})
            for m in design.datapath.modules())
        assert len(result.sessions) == kinds_per_module
