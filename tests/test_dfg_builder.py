"""Unit tests for DFGBuilder and DFG validation."""

import pytest

from repro.dfg import DFGBuilder
from repro.errors import DFGError


class TestBuilder:
    def test_duplicate_op_id(self):
        b = DFGBuilder("dup")
        b.inputs("a", "b")
        b.op("N1", "+", "x", "a", "b")
        with pytest.raises(DFGError):
            b.op("N1", "-", "y", "a", "b")

    def test_implicit_input_detection(self):
        b = DFGBuilder("implicit")
        b.op("N1", "+", "x", "a", "b")  # a, b never declared
        dfg = b.build()
        assert dfg.variable("a").is_input
        assert dfg.variable("b").is_input
        assert not dfg.variable("x").is_input

    def test_implicit_output_detection(self):
        b = DFGBuilder("implicit-out")
        b.inputs("a", "b")
        b.op("N1", "+", "x", "a", "b")  # x defined, never read
        dfg = b.build()
        assert dfg.variable("x").is_output

    def test_condition_not_marked_output(self):
        b = DFGBuilder("cond")
        b.inputs("a", "b")
        b.compare("N1", "<", "c", "a", "b")
        dfg = b.build()
        assert dfg.variable("c").is_condition
        assert not dfg.variable("c").is_output

    def test_compare_rejects_non_comparison(self):
        b = DFGBuilder("badcmp")
        b.inputs("a", "b")
        with pytest.raises(DFGError):
            b.compare("N1", "+", "c", "a", "b")

    def test_empty_dfg_rejected(self):
        with pytest.raises(DFGError):
            DFGBuilder("empty").build()

    def test_condition_as_data_rejected(self):
        b = DFGBuilder("cond-data")
        b.inputs("a", "b")
        b.compare("N1", "<", "c", "a", "b")
        b.op("N2", "+", "x", "c", "a")  # condition used as data
        with pytest.raises(DFGError):
            b.build()

    def test_loop_condition_must_be_condition(self):
        b = DFGBuilder("badloop")
        b.inputs("a", "b")
        b.op("N1", "+", "x", "a", "b")
        b.loop("x")
        with pytest.raises(DFGError):
            b.build()

    def test_loop_condition_must_exist(self):
        b = DFGBuilder("noloop")
        b.inputs("a", "b")
        b.op("N1", "+", "x", "a", "b")
        b.loop("nothere")
        with pytest.raises(DFGError):
            b.build()

    def test_kind_accepts_enum_and_symbol(self):
        from repro.dfg import OpKind
        b = DFGBuilder("kinds")
        b.inputs("a", "b")
        b.op("N1", OpKind.ADD, "x", "a", "b")
        b.op("N2", "*", "y", "x", "b")
        dfg = b.build()
        assert dfg.operation("N1").kind == OpKind.ADD
        assert dfg.operation("N2").kind == OpKind.MUL

    def test_program_order_preserved(self):
        b = DFGBuilder("order")
        b.inputs("a", "b")
        b.op("N9", "+", "x", "a", "b")
        b.op("N1", "-", "y", "x", "b")
        dfg = b.build()
        assert dfg.op_order == ["N9", "N1"]
        assert dfg.operation("N9").order == 0
