"""Differential properties of the timing engine, via hypothesis.

Static timing analysis is checked against an independent oracle: a
hand-rolled synchronous unit-delay event simulation.  Under the unit
delay table (every gate 1.0, ``clk_q``/``setup``/``fanin_step`` 0) an
STA arrival is a pure level count, so on any netlist

* the simulated last-toggle time of an endpoint never exceeds its STA
  arrival (arrivals are sound upper bounds on real switching), and
* an endpoint the analyser proves *false* (arrival None, cone constant
  under ternary propagation) never toggles at all — not even
  transiently, because ternary evaluation is instantaneous-value
  monotone.

A third property pins warm-vs-cold determinism: re-analysing through a
shared :class:`ConeCache` must reproduce the cold report exactly,
modulo the cache-statistics fields the bench harness scrubs.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis.timing import ConeCache, DelayTable, analyze_timing
from repro.gates import GateNetlist, GateType
from repro.gates.ternary import eval_gate
from repro.harness.bench_timing import scrub_cache_stats

#: Every gate exactly one unit, no sequential margins: an arrival under
#: this table is the depth (in gates) of the worst live path.
UNIT = DelayTable(buf=1.0, not_=1.0, and_=1.0, or_=1.0, nand=1.0,
                  nor=1.0, xor=1.0, xnor=1.0, fanin_step=0.0,
                  clk_q=0.0, setup=0.0)

PERIOD = 100.0  # looser than any drawable cone, so slack never matters

_COMB = (GateType.BUF, GateType.NOT, GateType.AND, GateType.OR,
         GateType.NAND, GateType.NOR, GateType.XOR, GateType.XNOR)
_SOURCELIKE = (GateType.INPUT, GateType.CONST0, GateType.CONST1,
               GateType.DFF)


@st.composite
def netlists(draw):
    """A random acyclic netlist plus old/new values for its sources."""
    net = GateNetlist("prop")
    toggled = [net.add_input(f"i{n}") for n in range(draw(st.integers(1, 3)))]
    dffs = [net.add_dff(f"q{n}") for n in range(draw(st.integers(0, 2)))]
    toggled += dffs
    if draw(st.booleans()):
        net.add(GateType.CONST0)
    if draw(st.booleans()):
        net.add(GateType.CONST1)
    for _ in range(draw(st.integers(3, 18))):
        gtype = draw(st.sampled_from(_COMB))
        arity = 1 if gtype in (GateType.BUF, GateType.NOT) else 2
        pool = range(len(net.gates))
        fanins = tuple(draw(st.sampled_from(pool)) for _ in range(arity))
        net.add(gtype, fanins)
    pool = range(len(net.gates))
    for n in range(draw(st.integers(1, 3))):
        net.set_output(f"o{n}", draw(st.sampled_from(pool)))
    for q in dffs:
        net.connect_dff(q, draw(st.sampled_from(pool)))
    bits = st.lists(st.booleans(), min_size=len(toggled),
                    max_size=len(toggled))
    old = {g: int(v) for g, v in zip(toggled, draw(bits))}
    new = {g: int(v) for g, v in zip(toggled, draw(bits))}
    return net, old, new


def _steady(net: GateNetlist, sources: dict[int, int]) -> dict[int, int]:
    """Combinationally stable values; gid order is topological here."""
    values: dict[int, int] = {}
    for gate in net.gates:
        if gate.gtype in (GateType.INPUT, GateType.DFF):
            values[gate.gid] = sources[gate.gid]
        elif gate.gtype is GateType.CONST0:
            values[gate.gid] = 0
        elif gate.gtype is GateType.CONST1:
            values[gate.gid] = 1
        else:
            values[gate.gid] = eval_gate(
                gate.gtype, [values[f] for f in gate.fanins])
    return values


def simulate(net: GateNetlist, old: dict[int, int],
             new: dict[int, int]) -> dict[int, float]:
    """Unit-delay event simulation of one clock edge.

    Starts from the steady state under ``old``; at t=0 every input and
    DFF Q switches to ``new``; each combinational gate then re-evaluates
    its *previous-step* fanin values once per unit step until the net
    is quiet.  Returns the last toggle time per gid (absent = never
    toggled).
    """
    current = _steady(net, old)
    last_toggle: dict[int, float] = {}
    for gid, value in new.items():
        if current[gid] != value:
            current[gid] = value
            last_toggle[gid] = 0.0
    for t in range(1, len(net.gates) + 2):
        step = dict(current)
        quiet = True
        for gate in net.gates:
            if gate.gtype in _SOURCELIKE:
                continue
            value = eval_gate(gate.gtype,
                              [current[f] for f in gate.fanins])
            if value != current[gate.gid]:
                step[gate.gid] = value
                last_toggle[gate.gid] = float(t)
                quiet = False
        current = step
        if quiet:
            break
    return last_toggle


def _timed_gid(net: GateNetlist, endpoint) -> int:
    """The gid whose signal the endpoint's arrival describes (a DFF
    endpoint times its D fanin's driver)."""
    if endpoint.kind == "dff":
        return net.gates[endpoint.gid].fanins[0]
    return endpoint.gid


class TestDifferential:
    @settings(max_examples=60, deadline=None)
    @given(netlists())
    def test_arrival_bounds_last_toggle(self, drawn):
        net, old, new = drawn
        report = analyze_timing(net, bits=4, table=UNIT, period=PERIOD,
                                k_paths=0)
        assert not report.cycle and not report.table_problems
        toggles = simulate(net, old, new)
        for endpoint in report.endpoints:
            if not endpoint.analysed or endpoint.arrival is None:
                continue
            last = toggles.get(_timed_gid(net, endpoint))
            if last is not None:
                assert last <= endpoint.arrival + 1e-9, (
                    f"{endpoint.name}: toggled at {last}, "
                    f"STA arrival {endpoint.arrival}")

    @settings(max_examples=60, deadline=None)
    @given(netlists())
    def test_proved_false_endpoints_never_toggle(self, drawn):
        net, old, new = drawn
        report = analyze_timing(net, bits=4, table=UNIT, period=PERIOD,
                                k_paths=0)
        toggles = simulate(net, old, new)
        for endpoint in report.endpoints:
            if endpoint.analysed and endpoint.arrival is None:
                assert _timed_gid(net, endpoint) not in toggles, (
                    f"{endpoint.name} proved false yet toggled")

    @settings(max_examples=30, deadline=None)
    @given(netlists())
    def test_warm_report_equals_cold(self, drawn):
        net, _, _ = drawn
        cache = ConeCache()
        cold = analyze_timing(net, bits=4, table=UNIT, period=PERIOD,
                              k_paths=0, cache=cache)
        warm = analyze_timing(net, bits=4, table=UNIT, period=PERIOD,
                              k_paths=0, cache=cache)
        assert scrub_cache_stats(cold.to_dict()) \
            == scrub_cache_stats(warm.to_dict())
        assert warm.cone_hits == warm.cones_total
