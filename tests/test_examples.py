"""Smoke tests for the runnable examples (the fast ones).

The slower examples (compare_flows, custom_behavior, dft_explorer) run
full ATPG and are exercised by the benchmark suite's equivalent paths;
here we keep the quick ones from rotting.
"""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=240)
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "RTL check 4" in out
        assert "MISMATCH" not in out

    def test_testability_explorer_small(self):
        out = run_example("testability_explorer.py", "tseng")
        assert "quality" in out
        assert out.count("\n") > 9   # the grid printed

    def test_examples_all_importable(self):
        """Every example at least parses and imports its dependencies."""
        import ast
        for path in sorted(EXAMPLES.glob("*.py")):
            ast.parse(path.read_text())
