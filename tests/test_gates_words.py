"""Exhaustive/randomised equivalence tests of the word-level gate
constructions against the reference semantics."""

import random

import pytest

from repro.dfg.ops import OpKind
from repro.gates import CompiledCircuit, GateNetlist
from repro.gates.expand import _op_word
from repro.gates.simulate import FULL
from repro.gates.words import input_word
from repro.rtl import apply_op


def _evaluate_kind(kind: OpKind, a_val: int, b_val: int, bits: int) -> int:
    """Build a tiny circuit computing `kind` and run one vector."""
    net = GateNetlist(f"check_{kind.name}")
    a = input_word(net, "a", bits)
    b = input_word(net, "b", bits)
    out = _op_word(net, kind, a, b)
    for i, gid in enumerate(out):
        net.set_output(f"o[{i}]", gid)
    circuit = CompiledCircuit(net)
    vec = {}
    for i in range(bits):
        vec[f"a[{i}]"] = FULL if (a_val >> i) & 1 else 0
        vec[f"b[{i}]"] = FULL if (b_val >> i) & 1 else 0
    outs, _ = circuit.run([vec])
    word = 0
    for i in range(len(out)):
        if outs[0][f"o[{i}]"] & 1:
            word |= 1 << i
    return word


ARITH_KINDS = [OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.DIV,
               OpKind.LT, OpKind.GT, OpKind.LE, OpKind.GE,
               OpKind.EQ, OpKind.NE, OpKind.AND, OpKind.OR, OpKind.XOR,
               OpKind.SHL, OpKind.SHR]


class TestExhaustive4Bit:
    @pytest.mark.parametrize("kind", ARITH_KINDS,
                             ids=lambda k: k.name)
    def test_all_4bit_pairs(self, kind):
        # Compile once, evaluate all 256 pairs lane-parallel would be
        # nicer; here clarity wins: spot-check the full cross product
        # with a stride plus the corner values.
        interesting = [0, 1, 2, 3, 7, 8, 9, 14, 15]
        for a in interesting:
            for b in interesting:
                expected = apply_op(kind, a, b, 4)
                assert _evaluate_kind(kind, a, b, 4) == expected, \
                    f"{kind.name}({a},{b})"

    def test_not_unary(self):
        for a in range(16):
            assert _evaluate_kind(OpKind.NOT, a, 0, 4) == 15 - a


class TestRandom8Bit:
    @pytest.mark.parametrize("kind", ARITH_KINDS,
                             ids=lambda k: k.name)
    def test_random_pairs(self, kind):
        rng = random.Random(hash(kind.name) & 0xFFFF)
        for _ in range(25):
            a = rng.randrange(256)
            b = rng.randrange(256)
            expected = apply_op(kind, a, b, 8)
            assert _evaluate_kind(kind, a, b, 8) == expected, \
                f"{kind.name}({a},{b})"


class TestLaneParallelism:
    def test_64_adds_at_once(self):
        """Each lane is an independent machine: 64 different additions
        evaluated by one compiled call."""
        bits = 8
        net = GateNetlist("lanes")
        a = input_word(net, "a", bits)
        b = input_word(net, "b", bits)
        out = _op_word(net, OpKind.ADD, a, b)
        for i, gid in enumerate(out):
            net.set_output(f"o[{i}]", gid)
        circuit = CompiledCircuit(net)
        rng = random.Random(7)
        pairs = [(rng.randrange(256), rng.randrange(256))
                 for _ in range(64)]
        vec = {}
        for i in range(bits):
            for lane, (av, bv) in enumerate(pairs):
                if (av >> i) & 1:
                    vec[f"a[{i}]"] = vec.get(f"a[{i}]", 0) | (1 << lane)
                if (bv >> i) & 1:
                    vec[f"b[{i}]"] = vec.get(f"b[{i}]", 0) | (1 << lane)
        outs, _ = circuit.run([vec])
        for lane, (av, bv) in enumerate(pairs):
            got = 0
            for i in range(bits):
                if (outs[0][f"o[{i}]"] >> lane) & 1:
                    got |= 1 << i
            assert got == (av + bv) % 256
