"""Tests for the repro.lint design-rule checker.

Each rule is exercised against a seeded-broken design and asserted by
its stable diagnostic code; the six paper benchmarks must come out of
the full pipeline audit with zero errors.
"""

from __future__ import annotations

import types

import pytest

from repro.alloc.binding import Binding, default_binding, validate_binding
from repro.bench import load
from repro.dfg import DFGBuilder
from repro.dfg.graph import DFG, DependenceEdge, Operation, Variable
from repro.dfg.ops import OpKind
from repro.dfg.validate import validate_dfg
from repro.errors import BindingError, DFGError, PetriNetError, SynthesisError
from repro.etpn.from_dfg import default_design
from repro.gates.netlist import Gate, GateNetlist, GateType
from repro.lint import (Diagnostic, LintReport, Severity, all_rules,
                        lint_binding, lint_datapath, lint_design, lint_dfg,
                        lint_netlist, lint_petri, lint_pipeline,
                        lint_schedule, lint_structural)
from repro.petri.net import PetriNet, Transition
from repro.sched.asap_alap import asap_schedule
from repro.synth import SynthesisParams, synthesize
from repro.synth.algorithm import _debug_lint

PAPER_BENCHMARKS = ("ex", "dct", "diffeq", "ewf", "paulin", "tseng")


def codes(report: LintReport) -> set[str]:
    return {d.code for d in report}


# ----------------------------------------------------------------------
# Seeded-broken designs, one per layer
# ----------------------------------------------------------------------
def broken_dfg() -> DFG:
    """Direct construction bypasses the builder's validation: one graph
    violating DFG003/004/005/006/007 at once."""
    variables = {
        "a": Variable("a", is_input=True),
        "c": Variable("c", is_condition=True),
        "z": Variable("z", is_output=True),
    }
    operations = {
        "N1": Operation("N1", OpKind.ADD, ("ghost", "a"), "z", order=0),
        "N2": Operation("N2", OpKind.ADD, ("c", "a"), "z", order=1),
        "N3": Operation("N3", OpKind.ADD, ("a", "a"), "phantom", order=2),
        "N4": Operation("N4", OpKind.ADD, ("a", "a"), "c", order=3),
    }
    return DFG("broken", variables, operations, list(operations),
               loop_condition="missing")


class TestDfgRules:
    def test_collects_every_structural_error(self):
        report = lint_dfg(broken_dfg())
        assert {"DFG003", "DFG004", "DFG005", "DFG006",
                "DFG007"} <= codes(report)
        assert report.has_errors

    def test_empty_dfg(self):
        report = lint_dfg(DFG("void", {}, {}, []))
        assert codes(report) == {"DFG001"}

    def test_no_primary_inputs(self):
        variables = {"z": Variable("z", is_output=True)}
        operations = {"N1": Operation("N1", OpKind.MOVE, ("z",), "z")}
        report = lint_dfg(DFG("closed", variables, operations, ["N1"]))
        assert "DFG002" in codes(report)

    def test_dependence_cycle(self, chain_dfg):
        edge = DependenceEdge("N3", "N1", "flow", "z")
        chain_dfg._edges.append(edge)
        chain_dfg._succ["N3"].append(edge)
        chain_dfg._pred["N1"].append(edge)
        assert "DFG008" in codes(lint_dfg(chain_dfg))

    def test_malformed_operation(self):
        variables = {"a": Variable("a", is_input=True),
                     "z": Variable("z", is_output=True)}
        operations = {
            "N1": Operation("N1", OpKind.ADD, ("a",), "z", order=0),
            "N2": Operation("N2", OpKind.ADD, ("a", "a"), None, order=1),
        }
        report = lint_dfg(DFG("odd", variables, operations, ["N1", "N2"]))
        found = [d for d in report if d.code == "DFG009"]
        assert {d.location for d in found} == {"N1", "N2"}

    def test_dead_operation_and_write_only_variable(self):
        b = DFGBuilder("deadcode")
        b.inputs("a", "b")
        b.op("N1", "+", "x", "a", "b")
        b.op("N2", "+", "waste", "x", "b")
        b.outputs("x")
        report = lint_dfg(b.build())
        assert {"DFG010", "DFG011"} <= codes(report)
        assert not report.has_errors  # dead code is a warning, not an error

    def test_unused_primary_input(self):
        b = DFGBuilder("dangling")
        b.inputs("a", "b", "unused")
        b.op("N1", "+", "x", "a", "b")
        b.outputs("x")
        report = lint_dfg(b.build())
        assert [d.location for d in report
                if d.code == "DFG012"] == ["unused"]

    def test_clean_dfg_is_clean(self, diamond_dfg):
        assert len(lint_dfg(diamond_dfg)) == 0


class TestSchedRules:
    def test_unscheduled_operation(self, chain_dfg):
        steps = asap_schedule(chain_dfg)
        del steps["N3"]
        assert "SCH001" in codes(lint_schedule(chain_dfg, steps))

    def test_unknown_scheduled_operation(self, chain_dfg):
        steps = asap_schedule(chain_dfg)
        steps["N9"] = 2
        assert "SCH002" in codes(lint_schedule(chain_dfg, steps))

    def test_negative_step(self, chain_dfg):
        steps = asap_schedule(chain_dfg)
        steps["N1"] = -1
        assert "SCH003" in codes(lint_schedule(chain_dfg, steps))

    def test_precedence_violation(self, chain_dfg):
        steps = {"N1": 0, "N2": 0, "N3": 1}
        report = lint_schedule(chain_dfg, steps)
        assert "SCH004" in codes(report)

    def test_empty_control_step_is_info(self, chain_dfg):
        steps = asap_schedule(chain_dfg)
        gapped = {op: step + 2 if step > 0 else step
                  for op, step in steps.items()}
        report = lint_schedule(chain_dfg, gapped)
        empty = [d for d in report if d.code == "SCH005"]
        assert empty and all(d.severity is Severity.INFO for d in empty)

    def test_asap_schedule_is_clean(self, diamond_dfg):
        report = lint_schedule(diamond_dfg, asap_schedule(diamond_dfg))
        assert not report.has_errors


class TestBindingRules:
    def test_unbound_everything(self, chain_dfg):
        steps = asap_schedule(chain_dfg)
        report = lint_binding(chain_dfg, steps, Binding())
        assert {"BND001", "BND002"} <= codes(report)
        assert len([d for d in report if d.code == "BND001"]) == 3

    def test_module_mixes_unit_classes(self, chain_dfg):
        steps = asap_schedule(chain_dfg)
        binding = default_binding(chain_dfg)
        binding.module_of["N2"] = "M_N1"  # ADD onto the multiplier
        assert "BND003" in codes(lint_binding(chain_dfg, steps, binding))

    def test_module_step_conflict(self, diamond_dfg):
        steps = asap_schedule(diamond_dfg)
        binding = default_binding(diamond_dfg)
        binding.module_of["N2"] = "M_N1"  # both MULs run in step 0
        assert "BND004" in codes(lint_binding(diamond_dfg, steps, binding))

    def test_register_lifetime_overlap(self, diamond_dfg):
        steps = asap_schedule(diamond_dfg)
        binding = default_binding(diamond_dfg)
        binding.register_of["y"] = binding.register_of["x"]
        assert "BND005" in codes(lint_binding(diamond_dfg, steps, binding))

    def test_register_for_condition_variable(self, loop_dfg):
        steps = asap_schedule(loop_dfg)
        binding = default_binding(loop_dfg)
        binding.register_of["c"] = "R_c"
        report = lint_binding(loop_dfg, steps, binding)
        assert "BND006" in codes(report)
        assert not report.has_errors

    def test_stale_binding_entries(self, chain_dfg):
        steps = asap_schedule(chain_dfg)
        binding = default_binding(chain_dfg)
        binding.module_of["N99"] = "M_gone"
        binding.register_of["ghost"] = "R_gone"
        stale = [d for d in lint_binding(chain_dfg, steps, binding)
                 if d.code == "BND007"]
        assert len(stale) == 2

    def test_default_binding_is_clean(self, diamond_dfg):
        steps = asap_schedule(diamond_dfg)
        report = lint_binding(diamond_dfg, steps,
                              default_binding(diamond_dfg))
        assert not report.has_errors


class TestPetriRules:
    def test_empty_net(self):
        report = lint_petri(PetriNet("void"))
        assert codes(report) == {"NET001"}

    def test_no_initial_marking(self):
        net = PetriNet("dark")
        net.add_place("p0")
        assert "NET002" in codes(lint_petri(net))

    def test_unreachable_structure(self):
        net = PetriNet("island")
        net.add_place("p0")
        net.add_place("p1")
        net.add_place("p2")
        net.add_transition("t1", ["p1"], ["p2"])
        net.set_initial("p0")
        net.set_final("p2")
        report = lint_petri(net)
        assert {"NET003", "NET004", "NET005"} <= codes(report)
        assert not report.has_errors  # reachability findings are warnings

    def test_sourceless_transition(self):
        net = PetriNet("free")
        net.add_place("p0")
        net.set_initial("p0")
        # add_transition() rejects sourceless transitions, so seed one
        # behind the API's back the way an external reader could.
        net.transitions["tx"] = Transition("tx", (), ("p0",))
        assert "NET006" in codes(lint_petri(net))

    def test_control_net_of_design_is_clean(self, loop_dfg):
        design = default_design(loop_dfg)
        assert not lint_petri(design.control_net).has_errors

    def test_validate_delegates_to_rules(self):
        with pytest.raises(PetriNetError, match="no places"):
            PetriNet("void").validate()


def seeded_gate_netlist() -> GateNetlist:
    """A netlist violating most gate rules at once (gates appended
    directly, bypassing the construction API's guards)."""
    nl = GateNetlist("mess")
    a = nl.add_input("a")
    nl.add_input("unused")                                     # GAT006
    nl.add_dff("float")                                        # GAT001
    g1 = len(nl.gates)
    nl.gates.append(Gate(g1, GateType.AND, (a, g1 + 1)))       # GAT002
    nl.gates.append(Gate(g1 + 1, GateType.AND, (g1, a)))
    nl.gates.append(Gate(g1 + 2, GateType.OR, (a, 99)))        # GAT003
    nl.gates.append(Gate(g1 + 3, GateType.DFF, (a, a), "dd"))  # GAT005
    nl.gates.append(Gate(g1 + 4, GateType.AND, (a,)))          # GAT007
    nl.set_output("z", g1 + 1)
    nl.outputs["bad"] = 99                                     # GAT008
    return nl


class TestGateRules:
    def test_seeded_netlist_hits_every_error_rule(self):
        report = lint_netlist(seeded_gate_netlist())
        assert {"GAT001", "GAT002", "GAT003", "GAT005", "GAT006",
                "GAT007", "GAT008"} <= codes(report)

    def test_dead_gate_is_warning(self):
        nl = GateNetlist("waste")
        a = nl.add_input("a")
        nl.add(GateType.NOT, (a,), name="na")
        nl.set_output("z", a)
        report = lint_netlist(nl)
        assert "GAT004" in codes(report)
        assert not report.has_errors

    def test_clean_netlist_is_clean(self):
        nl = GateNetlist("ok")
        a = nl.add_input("a")
        b = nl.add_input("b")
        d = nl.add_dff("state")
        g = nl.add(GateType.AND, (a, b))
        x = nl.add(GateType.XOR, (g, d))
        nl.connect_dff(d, x)
        nl.set_output("z", x)
        assert len(lint_netlist(nl)) == 0

    def test_check_complete_reports_all_floating_dffs(self):
        nl = GateNetlist("t")
        nl.add_dff("r0")
        nl.add_dff("r1")
        with pytest.raises(Exception) as excinfo:
            nl.check_complete()
        assert "r0" in str(excinfo.value) and "r1" in str(excinfo.value)


class TestTestabilityRules:
    def test_self_loop_detected(self, multidef_dfg):
        design = default_design(multidef_dfg)
        assert "TST001" in codes(lint_datapath(design.datapath))

    def test_deep_sequential_path(self):
        b = DFGBuilder("deep")
        b.inputs("a", "b")
        prev = "a"
        for i in range(1, 11):
            b.op(f"N{i}", "+", f"c{i}", prev, "b")
            prev = f"c{i}"
        b.outputs(prev)
        design = default_design(b.build())
        report = lint_datapath(design.datapath, depth_limit=3.0)
        assert "TST002" in codes(report)

    def test_unobservable_register(self):
        b = DFGBuilder("deadend")
        b.inputs("a", "b")
        b.op("N1", "+", "x", "a", "b")
        b.op("N2", "+", "dead", "x", "b")
        b.outputs("x")
        design = default_design(b.build())
        report = lint_datapath(design.datapath)
        assert any(d.code == "TST003" and d.location == "R_dead"
                   for d in report)


# ----------------------------------------------------------------------
# Aggregate checkers, validator delegation, synthesis hook
# ----------------------------------------------------------------------
class TestAggregates:
    def test_lint_design_clean(self, chain_dfg):
        report = lint_design(default_design(chain_dfg))
        assert not report.has_errors

    def test_lint_pipeline_stops_on_dfg_errors(self):
        report = lint_pipeline(broken_dfg())
        assert report.has_errors
        assert all(d.layer == "dfg" for d in report)

    def test_lint_pipeline_reports_derivation_failure(self, monkeypatch):
        import repro.etpn.from_dfg as from_dfg_mod
        from repro.errors import ReproError

        def boom(dfg, label="default"):
            raise ReproError("seeded failure")

        monkeypatch.setattr(from_dfg_mod, "default_design", boom)
        report = lint_pipeline(load("ex"), gates=False)
        assert "LNT001" in codes(report)

    def test_seeded_designs_cover_many_rules(self, chain_dfg, diamond_dfg,
                                             multidef_dfg):
        seen: set[str] = set()
        seen |= codes(lint_dfg(broken_dfg()))
        seen |= codes(lint_schedule(chain_dfg, {"N1": -1, "N3": 0, "N9": 5}))
        seen |= codes(lint_binding(chain_dfg, asap_schedule(chain_dfg),
                                   Binding()))
        net = PetriNet("island")
        net.add_place("p0")
        net.add_place("p1")
        net.add_transition("t1", ["p1"], ["p1"])
        net.set_initial("p0")
        seen |= codes(lint_petri(net))
        seen |= codes(lint_netlist(seeded_gate_netlist()))
        seen |= codes(lint_datapath(default_design(multidef_dfg).datapath))
        assert len(seen) >= 12, sorted(seen)

    def test_every_registered_rule_has_a_distinct_code(self):
        rules = all_rules()
        assert len({r.code for r in rules}) == len(rules) >= 30


class TestValidatorDelegation:
    def test_validate_dfg_lists_every_violation(self):
        with pytest.raises(DFGError) as excinfo:
            validate_dfg(broken_dfg())
        message = str(excinfo.value)
        assert "reads unknown variable 'ghost'" in message
        assert "unknown loop condition 'missing'" in message

    def test_validate_binding_lists_every_violation(self, chain_dfg):
        steps = asap_schedule(chain_dfg)
        with pytest.raises(BindingError) as excinfo:
            validate_binding(chain_dfg, steps, Binding())
        message = str(excinfo.value)
        assert "unbound operation N1" in message
        assert "unbound variable" in message

    def test_validate_dfg_accepts_clean_graph(self, diamond_dfg):
        validate_dfg(diamond_dfg)  # must not raise


class TestSynthesisHook:
    def test_debug_lint_passes_on_legal_mergers(self, diamond_dfg):
        result = synthesize(diamond_dfg, SynthesisParams(debug_lint=True))
        assert result.design.label == "ours"

    def test_debug_lint_raises_on_illegal_design(self, chain_dfg):
        design = default_design(chain_dfg).replaced(binding=Binding())
        outcome = types.SimpleNamespace(kind="mm", absorbed="M_a",
                                        kept="M_b")
        with pytest.raises(SynthesisError, match="lint errors after merger"):
            _debug_lint(design, 0, outcome)


class TestDiagnosticFormatting:
    def test_format_and_dict_round_trip(self):
        diag = Diagnostic(code="DFG001", severity=Severity.ERROR,
                          layer="dfg", location="N1", message="boom",
                          hint="fix it")
        text = diag.format()
        assert "DFG001" in text and "boom" in text and "fix it" in text
        data = diag.to_dict()
        assert data["code"] == "DFG001"
        assert data["severity"] == "error"

    def test_report_strict_mode(self):
        report = LintReport()
        report.add(Diagnostic(code="TST001", severity=Severity.WARNING,
                              layer="testability", location="",
                              message="smell"))
        assert report.ok(strict=False)
        assert not report.ok(strict=True)


# ----------------------------------------------------------------------
# The six paper benchmarks must audit clean end-to-end
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", PAPER_BENCHMARKS)
def test_benchmark_pipeline_has_no_errors(name):
    report = lint_pipeline(load(name), bits=4)
    assert not report.has_errors, report.format_text()


class TestReportDeterminism:
    def _diag(self, code="DFG001", location="N1", message="boom"):
        return Diagnostic(code=code, severity=Severity.ERROR, layer="dfg",
                          location=location, message=message)

    def test_exact_duplicates_collapse(self):
        report = LintReport()
        report.add(self._diag())
        report.add(self._diag())
        assert len(report) == 1
        # A differing field keeps the finding distinct.
        report.add(self._diag(location="N2"))
        assert len(report) == 2

    def test_extend_deduplicates(self):
        left, right = LintReport(), LintReport()
        left.add(self._diag())
        right.add(self._diag())
        right.add(self._diag(message="other"))
        left.extend(right)
        assert len(left) == 2

    def test_sorted_is_a_total_order(self):
        a = self._diag(location="N1", message="alpha")
        b = self._diag(location="N1", message="beta")
        forward, backward = LintReport(), LintReport()
        forward.add(a)
        forward.add(b)
        backward.add(b)
        backward.add(a)
        assert forward.sorted() == backward.sorted()
        assert forward.format_text() == backward.format_text()

    def test_repeated_runs_render_identically(self, diamond_dfg):
        first = lint_pipeline(diamond_dfg, gates=False).format_text()
        second = lint_pipeline(diamond_dfg, gates=False).format_text()
        assert first == second


def invariant_dead_net() -> PetriNet:
    """Free choice feeding a join: structure proves the join dead
    (its inputs are mutually exclusive) and the closed net has an
    uncontrolled siphon — yet every place is closure-reachable, so the
    NET layer sees nothing wrong."""
    net = PetriNet("invdead")
    for p in ("S0", "A", "B", "J"):
        net.add_place(p)
    net.add_transition("ta", ["S0"], ["A"])
    net.add_transition("tb", ["S0"], ["B"])
    net.add_transition("join", ["A", "B"], ["J"])
    net.set_initial("S0")
    net.set_final("J")
    return net


class TestStructuralRules:
    def test_invariant_dead_transition_found(self):
        report = lint_structural(invariant_dead_net())
        dead = [d for d in report if d.code == "STR004"]
        assert [d.location for d in dead] == ["join"]

    def test_uncontrolled_siphon_found(self):
        report = lint_structural(invariant_dead_net())
        assert "STR005" in codes(report)

    def test_petri_layer_is_blind_to_invariant_deadness(self):
        # The closure reaches every place, so NET004/NET005 stay quiet:
        # only the invariant arithmetic exposes the dead join.
        report = lint_petri(invariant_dead_net())
        assert not any(d.code.startswith("NET") for d in report)

    def test_benchmark_designs_are_structurally_clean(self):
        for name in PAPER_BENCHMARKS:
            design = default_design(load(name))
            report = lint_structural(design.control_net)
            assert len(report) == 0, report.format_text()

    def test_net007_skips_bfs_when_structure_proves_safety(self,
                                                           monkeypatch,
                                                           chain_dfg):
        # With the structural tier proving safety, NET007 must not
        # enumerate at all: a reachability graph constructor that blows
        # up on contact proves the dedupe.
        import repro.analysis.reach_graph as reach_graph_mod

        def boom(*args, **kwargs):
            raise AssertionError("NET007 enumerated a proven-safe net")

        monkeypatch.setattr(reach_graph_mod, "ReachabilityGraph", boom)
        net = default_design(chain_dfg).control_net
        report = lint_petri(net)
        assert "NET007" not in codes(report)
        assert not report.has_errors

    def test_certificate_self_check_rule_exists(self):
        assert "STR006" in {r.code for r in all_rules()}

    def test_lint_design_includes_structural_layer(self, chain_dfg):
        report = lint_design(default_design(chain_dfg))
        assert not report.has_errors
        # The layer ran (its rules are registered and the run crashed
        # nowhere), even though a healthy design yields no findings.
        assert "LNT001" not in codes(report)


class TestAnalysisLayerIntegration:
    def test_lint_design_includes_analysis_layer(self, diamond_dfg):
        design = default_design(diamond_dfg)
        broken = design.replaced(
            binding=design.binding.merge_registers("R_x", "R_y"))
        report = lint_design(broken)
        assert "EQV005" in codes(report)
        # The same double-booking also violates the lifetime rule, and
        # both families report it — from their own layers.
        layers = {d.layer for d in report if d.code.startswith("EQV")}
        assert layers == {"analysis"}

    def test_clean_design_still_clean(self, chain_dfg):
        report = lint_design(default_design(chain_dfg))
        assert not report.has_errors
