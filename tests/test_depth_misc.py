"""Deeper edge-case tests: Petri branching, FDS at scale, simulator
lane independence, and flow determinism."""

import random

import pytest

from repro.bench import load
from repro.dfg import UnitClass
from repro.gates import CompiledCircuit, GateNetlist, GateType
from repro.petri import (FINAL_PLACE, Guard, PetriNet, ReachabilityTree,
                         critical_path, execution_time)
from repro.sched import check_precedence, fds_schedule, peak_usage


class TestPetriBranching:
    def _if_else_net(self, then_steps: int, else_steps: int) -> PetriNet:
        """A guarded branch: cond ? then-chain : else-chain, then join."""
        net = PetriNet("branch")
        net.add_place("P0", delay=1)
        for i in range(then_steps):
            net.add_place(f"T{i}", delay=1)
        for i in range(else_steps):
            net.add_place(f"E{i}", delay=1)
        net.add_place(FINAL_PLACE, delay=0)
        net.add_transition("t_then", ["P0"], ["T0"], guard=Guard("c"))
        net.add_transition("t_else", ["P0"], ["E0"],
                           guard=Guard("c", negated=True))
        for i in range(then_steps - 1):
            net.add_transition(f"tt{i}", [f"T{i}"], [f"T{i+1}"])
        for i in range(else_steps - 1):
            net.add_transition(f"te{i}", [f"E{i}"], [f"E{i+1}"])
        net.add_transition("t_tj", [f"T{then_steps-1}"], [FINAL_PLACE])
        net.add_transition("t_ej", [f"E{else_steps-1}"], [FINAL_PLACE])
        net.set_initial("P0")
        net.set_final(FINAL_PLACE)
        return net

    def test_both_branches_explored(self):
        net = self._if_else_net(2, 4)
        tree = ReachabilityTree(net)
        markings = tree.reachable_markings()
        assert frozenset({"T0"}) in markings
        assert frozenset({"E0"}) in markings

    def test_critical_path_takes_longer_branch(self):
        net = self._if_else_net(2, 4)
        # 1 (P0) + 4 (else chain) dominates.
        assert execution_time(net) == 5
        cp = critical_path(net)
        assert "E3" in cp.places

    def test_symmetric_branches(self):
        net = self._if_else_net(3, 3)
        assert execution_time(net) == 4


class TestFdsAtScale:
    def test_ewf_schedules_and_balances(self):
        dfg = load("ewf")
        steps = fds_schedule(dfg)
        check_precedence(dfg, steps)
        peaks = peak_usage(dfg, steps)
        # 8 mults over a deep schedule: FDS should need few multipliers.
        assert peaks[UnitClass.MULTIPLIER] <= 3

    def test_longer_horizon_fewer_units(self):
        dfg = load("fir8")
        tight = peak_usage(dfg, fds_schedule(dfg))
        relaxed = peak_usage(dfg, fds_schedule(
            dfg, horizon=2 * max(fds_schedule(dfg).values()) + 2))
        assert (relaxed[UnitClass.MULTIPLIER]
                <= tight[UnitClass.MULTIPLIER])


class TestLaneIndependenceSequential:
    def test_64_independent_accumulators(self):
        """Each lane of a sequential circuit evolves independently."""
        net = GateNetlist("acc")
        q = net.add_dff("q")
        a = net.add_input("a")
        d = net.add(GateType.XOR, (q, a))
        net.connect_dff(q, d)
        net.set_output("q", q)
        circuit = CompiledCircuit(net)
        rng = random.Random(9)
        streams = [[rng.getrandbits(1) for _ in range(12)]
                   for _ in range(64)]
        vectors = []
        for cycle in range(12):
            packed = 0
            for lane in range(64):
                if streams[lane][cycle]:
                    packed |= 1 << lane
            vectors.append({"a": packed})
        _, state = circuit.run(vectors)
        for lane in range(64):
            expected = 0
            for bit in streams[lane]:
                expected ^= bit
            assert ((state[0] >> lane) & 1) == expected


class TestFlowDeterminism:
    @pytest.mark.parametrize("name", ["ex", "diffeq", "iir"])
    def test_ours_is_deterministic(self, name):
        from repro.synth import run_ours
        a = run_ours(load(name))
        b = run_ours(load(name))
        assert a.design.steps == b.design.steps
        assert a.design.binding.module_of == b.design.binding.module_of
        assert a.design.binding.register_of == b.design.binding.register_of
        assert [r.absorbed for r in a.history] \
            == [r.absorbed for r in b.history]
