"""Unit tests for the DFG data structure and dependence computation."""

import pytest

from repro.dfg import Const, DFGBuilder, OpKind, UnitClass, unit_class
from repro.dfg.graph import validate_operation, Operation
from repro.dfg.ops import (arity, compatible, is_commutative, is_comparison,
                           parse_op_symbol)
from repro.errors import DFGError


class TestOps:
    def test_unit_class_groups_mul_and_div(self):
        assert unit_class(OpKind.MUL) == UnitClass.MULTIPLIER
        assert unit_class(OpKind.DIV) == UnitClass.MULTIPLIER

    def test_unit_class_groups_alu_ops(self):
        for kind in (OpKind.ADD, OpKind.SUB, OpKind.LT, OpKind.AND):
            assert unit_class(kind) == UnitClass.ALU

    def test_add_and_sub_compatible(self):
        assert compatible(OpKind.ADD, OpKind.SUB)
        assert compatible(OpKind.ADD, OpKind.LT)

    def test_mul_and_add_incompatible(self):
        assert not compatible(OpKind.MUL, OpKind.ADD)

    def test_comparisons(self):
        assert is_comparison(OpKind.LT)
        assert not is_comparison(OpKind.ADD)

    def test_commutativity(self):
        assert is_commutative(OpKind.ADD)
        assert not is_commutative(OpKind.SUB)

    def test_arity(self):
        assert arity(OpKind.ADD) == 2
        assert arity(OpKind.NOT) == 1
        assert arity(OpKind.MOVE) == 1

    def test_parse_symbol_roundtrip(self):
        for kind in OpKind:
            assert parse_op_symbol(kind.value) is kind

    def test_parse_symbol_unknown(self):
        with pytest.raises(ValueError):
            parse_op_symbol("%%")


class TestGraphBasics:
    def test_chain_flow_edges(self, chain_dfg):
        flow = {(e.src, e.dst) for e in chain_dfg.flow_edges()}
        assert flow == {("N1", "N2"), ("N2", "N3")}

    def test_inputs_outputs(self, chain_dfg):
        assert [v.name for v in chain_dfg.inputs()] == ["a", "b", "c", "d"]
        assert [v.name for v in chain_dfg.outputs()] == ["z"]

    def test_defs_and_uses(self, chain_dfg):
        assert chain_dfg.defs_of("x") == ["N1"]
        assert chain_dfg.uses_of("x") == ["N2"]
        assert chain_dfg.uses_of("a") == ["N1"]

    def test_len_and_iter(self, chain_dfg):
        assert len(chain_dfg) == 3
        assert [op.op_id for op in chain_dfg] == ["N1", "N2", "N3"]

    def test_unknown_op_raises(self, chain_dfg):
        with pytest.raises(DFGError):
            chain_dfg.operation("N99")

    def test_unknown_variable_raises(self, chain_dfg):
        with pytest.raises(DFGError):
            chain_dfg.variable("nope")

    def test_op_count_by_class(self, diamond_dfg):
        counts = diamond_dfg.op_count_by_class()
        assert counts[UnitClass.MULTIPLIER] == 2
        assert counts[UnitClass.ALU] == 1


class TestMultiDef:
    def test_reaching_defs(self, multidef_dfg):
        n2 = multidef_dfg.operation("N2")
        assert n2.reaching[0] == "N1"  # u1 comes from N1

    def test_output_dependence(self, multidef_dfg):
        kinds = {(e.src, e.dst, e.kind) for e in multidef_dfg.edges()}
        assert ("N1", "N2", "flow") in kinds
        assert ("N1", "N2", "output") in kinds

    def test_anti_dependence(self):
        b = DFGBuilder("anti")
        b.inputs("a", "b")
        b.op("N1", "+", "t", "a", "b")
        b.op("N2", "+", "s", "t", "a")   # reads t
        b.op("N3", "-", "t", "a", "b")   # redefines t after the read
        kinds = {(e.src, e.dst, e.kind) for e in b.build().edges()}
        assert ("N2", "N3", "anti") in kinds


class TestConditions:
    def test_compare_marks_condition(self, loop_dfg):
        assert loop_dfg.variable("c").is_condition
        assert not loop_dfg.variable("c").needs_register()
        assert loop_dfg.condition_variables() == ["c"]

    def test_loop_condition_recorded(self, loop_dfg):
        assert loop_dfg.loop_condition == "c"


class TestOperationValidation:
    def test_wrong_arity(self):
        op = Operation("N1", OpKind.ADD, ("a",), "x")
        with pytest.raises(DFGError):
            validate_operation(op)

    def test_sink_must_be_comparison(self):
        op = Operation("N1", OpKind.ADD, ("a", "b"), None)
        with pytest.raises(DFGError):
            validate_operation(op)

    def test_const_operand(self):
        b = DFGBuilder("const")
        b.inputs("x")
        b.op("N1", "*", "y", 3, "x")
        dfg = b.build()
        assert dfg.operation("N1").srcs[0] == Const(3)
        assert dfg.operation("N1").src_variables() == ["x"]
