"""Unit tests for the markdown report generator."""

import json

import pytest

from repro.harness import load_rows, render_report, shape_checks, write_report


@pytest.fixture
def sample_rows():
    rows = []
    for flow, cov4, cov16, area16 in (
            ("camad", 80.0, 90.0, 1.5),
            ("approach1", 85.0, 93.0, 1.2),
            ("approach2", 86.0, 94.0, 1.2),
            ("ours", 88.0, 96.0, 1.0)):
        for bits, cov in ((4, cov4), (16, cov16)):
            rows.append({"kind": "table1", "benchmark": "ex", "flow": flow,
                         "bits": bits, "coverage_pct": cov,
                         "test_cycles": 100, "area_mm2": area16 if bits == 16
                         else 0.3, "paper_coverage_pct": 90.0,
                         "paper_test_cycles": 500})
    rows.append({"kind": "extra", "benchmark": "paulin", "flow": "ours",
                 "bits": 4, "coverage_pct": 91.0, "test_cycles": 50,
                 "area_mm2": 0.2})
    return rows


class TestShapeChecks:
    def test_all_claims_hold(self, sample_rows):
        checks = dict(shape_checks(sample_rows, "table1"))
        assert checks["CAMAD has the worst coverage at every width"]
        assert checks["ours has the best 16-bit coverage"]
        assert checks["ours has the smallest 16-bit area"]

    def test_violated_claim_flagged(self, sample_rows):
        for row in sample_rows:
            if row["flow"] == "camad" and row["bits"] == 4:
                row["coverage_pct"] = 99.0
        checks = dict(shape_checks(sample_rows, "table1"))
        assert not checks["CAMAD has the worst coverage at every width"]

    def test_empty_kind(self, sample_rows):
        assert shape_checks(sample_rows, "table3") == []


class TestRendering:
    def test_report_contains_tables_and_marks(self, sample_rows):
        text = render_report(sample_rows)
        assert "Table 1 — Ex" in text
        assert "✔" in text
        assert "90.0 → 88.0 %" in text
        assert "Extra benchmarks" in text

    def test_missing_tables_noted(self):
        text = render_report([])
        assert "no rows recorded" in text

    def test_roundtrip_through_files(self, sample_rows, tmp_path):
        rows_file = tmp_path / "rows.jsonl"
        with open(rows_file, "w") as handle:
            for row in sample_rows:
                handle.write(json.dumps(row) + "\n")
        output = tmp_path / "report.md"
        text = write_report(rows_file, output)
        assert output.read_text().strip() == text.strip()
        assert load_rows(rows_file) == sample_rows
