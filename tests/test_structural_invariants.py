"""Tests for the incidence matrix and Farkas semiflow elimination."""

from __future__ import annotations

import pytest

from repro.analysis.structural import (IncidenceMatrix, RESET_PREFIX,
                                       is_siphon, is_trap, maximal_trap,
                                       minimal_siphons, p_semiflows,
                                       semiflows, t_semiflows)
from repro.petri.net import PetriNet
from repro.runtime.budget import Budget


def chain_net(length: int = 4) -> PetriNet:
    net = PetriNet("chain")
    for i in range(length):
        net.add_place(f"S{i}")
    for i in range(length - 1):
        net.add_transition(f"t{i}", [f"S{i}"], [f"S{i + 1}"])
    net.set_initial("S0")
    net.set_final(f"S{length - 1}")
    return net


def fork_join_net() -> PetriNet:
    net = PetriNet("fj")
    for p in ("S0", "A", "B", "J"):
        net.add_place(p)
    net.add_transition("fork", ["S0"], ["A", "B"])
    net.add_transition("join", ["A", "B"], ["J"])
    net.set_initial("S0")
    net.set_final("J")
    return net


def loop_net() -> PetriNet:
    net = PetriNet("loop")
    for p in ("S0", "S1", "Pfinal"):
        net.add_place(p)
    net.add_transition("t0", ["S0"], ["S1"])
    net.add_transition("redo", ["S1"], ["S0"])
    net.add_transition("done", ["S1"], ["Pfinal"])
    net.set_initial("S0")
    net.set_final("Pfinal")
    return net


class TestIncidenceMatrix:
    def test_deterministic_order(self):
        m = IncidenceMatrix.of(fork_join_net())
        assert m.places == ("A", "B", "J", "S0")
        assert m.transitions == ("fork", "join")

    def test_entries(self):
        m = IncidenceMatrix.of(fork_join_net())
        assert m.entry("S0", "fork") == -1
        assert m.entry("A", "fork") == 1
        assert m.entry("J", "fork") == 0

    def test_pre_post_sets(self):
        m = IncidenceMatrix.of(fork_join_net())
        j = m.transition_index["join"]
        assert m.pre_set(j) == {m.place_index["A"], m.place_index["B"]}
        assert m.post_set(j) == {m.place_index["J"]}

    def test_initial_marking(self):
        m = IncidenceMatrix.of(chain_net())
        assert m.initial == {m.place_index["S0"]: 1}

    def test_closed_adds_reset_transitions(self):
        net = chain_net(3)
        m = IncidenceMatrix.of(net).closed(net.final_places)
        resets = [t for t in m.transitions if t.startswith(RESET_PREFIX)]
        assert len(resets) == 1
        j = m.transition_index[resets[0]]
        assert m.pre_set(j) == {m.place_index["S2"]}
        assert m.post_set(j) == {m.place_index["S0"]}

    def test_ordinary(self):
        assert IncidenceMatrix.of(fork_join_net()).is_ordinary()


class TestSemiflows:
    def test_chain_p_invariant(self):
        m = IncidenceMatrix.of(chain_net(4))
        basis, complete = p_semiflows(m)
        assert complete
        assert len(basis) == 1
        # All-ones vector: one token circulates through the chain.
        assert basis[0] == {i: 1 for i in range(4)}

    def test_chain_has_no_t_invariant(self):
        basis, complete = t_semiflows(IncidenceMatrix.of(chain_net()))
        assert complete and basis == []

    def test_loop_t_invariant(self):
        m = IncidenceMatrix.of(loop_net())
        basis, complete = t_semiflows(m)
        assert complete
        assert len(basis) == 1
        # t0 then redo returns to the initial marking.
        expected = {m.transition_index["t0"]: 1,
                    m.transition_index["redo"]: 1}
        assert basis[0] == expected

    def test_fork_join_branch_invariants(self):
        m = IncidenceMatrix.of(fork_join_net())
        basis, complete = p_semiflows(m)
        assert complete and len(basis) == 2
        # One minimal semiflow per branch: {S0, A, J} and {S0, B, J},
        # each with unit weights (their sum is the weighted cover).
        supports = {frozenset(m.places[i] for i in y) for y in basis}
        assert supports == {frozenset({"S0", "A", "J"}),
                            frozenset({"S0", "B", "J"})}
        assert all(set(y.values()) == {1} for y in basis)

    def test_semiflow_property_holds(self):
        m = IncidenceMatrix.of(fork_join_net())
        basis, _ = p_semiflows(m)
        for y in basis:
            for column in m.columns():
                assert sum(y.get(i, 0) * w for i, w in column.items()) == 0

    def test_row_cap_reports_incomplete(self):
        m = IncidenceMatrix.of(fork_join_net())
        _basis, complete = semiflows(m.columns(), len(m.places),
                                     max_rows=1)
        assert not complete

    def test_budget_charges(self):
        budget = Budget(max_steps=1)
        m = IncidenceMatrix.of(chain_net(6))
        _basis, complete = p_semiflows(m, budget=budget)
        assert not complete
        assert budget.exhausted


class TestSiphonsTraps:
    def test_whole_chain_is_siphon_and_trap(self):
        m = IncidenceMatrix.of(chain_net(3))
        everything = frozenset(range(3))
        assert is_siphon(m, everything)
        assert is_trap(m, everything)

    def test_last_place_is_trap_not_siphon(self):
        m = IncidenceMatrix.of(chain_net(3))
        last = frozenset({m.place_index["S2"]})
        assert is_trap(m, last)      # nothing consumes from S2
        assert not is_siphon(m, last)  # t1 produces without consuming

    def test_maximal_trap_of_chain_prefix(self):
        m = IncidenceMatrix.of(chain_net(3))
        # {S0, S1}: t1 consumes S1 producing only S2 -> S1 drops, then
        # t0 consumes S0 producing only S1 -> S0 drops.
        assert maximal_trap(m, frozenset({m.place_index["S0"],
                                          m.place_index["S1"]})) \
            == frozenset()

    def test_minimal_siphons_of_closed_chain(self):
        net = chain_net(3)
        m = IncidenceMatrix.of(net).closed(net.final_places)
        siphons, complete = minimal_siphons(m)
        assert complete
        assert siphons == [frozenset(range(3))]

    def test_minimal_siphons_of_closed_fork_join(self):
        net = fork_join_net()
        m = IncidenceMatrix.of(net).closed(net.final_places)
        siphons, complete = minimal_siphons(m)
        assert complete
        # One siphon per branch: {S0, A, J} and {S0, B, J}.
        supports = {frozenset(m.places[i] for i in s) for s in siphons}
        assert supports == {frozenset({"S0", "A", "J"}),
                            frozenset({"S0", "B", "J"})}
        for siphon in siphons:
            assert is_siphon(m, siphon)

    def test_node_cap_reports_incomplete(self):
        net = fork_join_net()
        m = IncidenceMatrix.of(net).closed(net.final_places)
        _siphons, complete = minimal_siphons(m, max_nodes=1)
        assert not complete

    @pytest.mark.parametrize("length", [1, 2, 5, 9])
    def test_found_siphons_are_minimal(self, length):
        net = chain_net(length)
        m = IncidenceMatrix.of(net).closed(net.final_places)
        siphons, _ = minimal_siphons(m)
        for a in siphons:
            for b in siphons:
                assert not (a < b), "non-minimal siphon kept"
