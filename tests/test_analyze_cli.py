"""Tests for the ``repro-hlts analyze`` subcommand."""

from __future__ import annotations

import json

from repro.cli import main

HDL_SOURCE = """\
design tiny;
input a, b;
output z;
begin
  T1: z := a + b;
end
"""


class TestAnalyzeCli:
    def test_default_flow_text(self, capsys):
        assert main(["analyze", "ex", "--flow", "default"]) == 0
        out = capsys.readouterr().out
        assert "certificate valid" in out
        assert "0 races" in out
        assert "[ok]" in out

    def test_all_benchmarks_default_flow(self, capsys):
        assert main(["analyze", "--flow", "default"]) == 0
        out = capsys.readouterr().out
        assert out.count("certificate valid") >= 6

    def test_synthesised_flow(self, capsys):
        assert main(["analyze", "ex", "--flow", "ours"]) == 0
        assert "certificate valid" in capsys.readouterr().out

    def test_json_format(self, capsys):
        assert main(["analyze", "ex", "--flow", "default",
                     "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        target = data["targets"][0]
        assert target["name"] == "ex"
        assert target["verified"] is True
        assert target["races"] == 0
        assert target["markings"] > 0
        assert target["certificate"]["valid"] is True

    def test_json_is_byte_stable(self, capsys):
        assert main(["analyze", "ex", "--flow", "default",
                     "--format", "json"]) == 0
        first = capsys.readouterr().out
        assert main(["analyze", "ex", "--flow", "default",
                     "--format", "json"]) == 0
        assert capsys.readouterr().out == first

    def test_verbose_prints_expressions(self, capsys):
        assert main(["analyze", "ex", "--flow", "default", "-v"]) == 0
        assert "output " in capsys.readouterr().out

    def test_unknown_target(self, capsys):
        assert main(["analyze", "no-such-benchmark"]) == 2
        assert "neither" in capsys.readouterr().err

    def test_hdl_file_target(self, tmp_path, capsys):
        source = tmp_path / "tiny.hdl"
        source.write_text(HDL_SOURCE)
        assert main(["analyze", str(source), "--flow", "default"]) == 0
        assert "certificate valid" in capsys.readouterr().out

    def test_max_markings_flag(self, capsys):
        # A tiny bound makes the control net unexplorable: the analysis
        # reports the skip (LNT001) and the run fails.
        assert main(["analyze", "ewf", "--flow", "default",
                     "--max-markings", "2"]) == 1
        out = capsys.readouterr().out
        assert "LNT001" in out and "[FAIL]" in out
