"""Unit tests for the gate-level functional driver helpers."""


from repro.bench import load
from repro.etpn import default_design
from repro.gates.drive import broadcast, functional_vectors, read_word
from repro.gates.simulate import FULL
from repro.rtl import build_control_table, generate_rtl


class TestHelpers:
    def test_broadcast(self):
        assert broadcast(1) == FULL
        assert broadcast(0) == 0

    def test_read_word(self):
        outputs = {"out_z[0]": 1, "out_z[1]": 0, "out_z[2]": FULL,
                   "out_z[3]": 0}
        assert read_word(outputs, "out_z", 4) == 0b0101

    def test_functional_vectors_structure(self):
        design = default_design(load("tseng"))
        rtl = generate_rtl(design, 4)
        table = build_control_table(design, rtl)
        vectors = functional_vectors(rtl, table, {v.name: 3 for v
                                                  in design.dfg.inputs()})
        assert len(vectors) == table.phase_count
        # Data bits present every cycle; control bits only where set.
        assert "in_a[0]" in vectors[0]
        assert all(v in (0, FULL) for v in vectors[0].values())

    def test_control_signals_follow_table(self):
        design = default_design(load("tseng"))
        rtl = generate_rtl(design, 4)
        table = build_control_table(design, rtl)
        vectors = functional_vectors(rtl, table,
                                     {v.name: 0 for v in design.dfg.inputs()})
        for phase, cycle in enumerate(vectors):
            for signal, value in table.phases[phase].items():
                assert cycle[signal] == broadcast(value)


class TestErrorsModule:
    def test_hierarchy(self):
        from repro import errors
        for name in ("DFGError", "PetriNetError", "ScheduleError",
                     "BindingError", "SynthesisError", "NetlistError",
                     "ATPGError", "HDLSyntaxError", "HDLSemanticError"):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_hdl_syntax_error_location(self):
        from repro.errors import HDLSyntaxError
        err = HDLSyntaxError("bad token", line=3, column=7)
        assert "line 3" in str(err)
        assert err.line == 3 and err.column == 7
