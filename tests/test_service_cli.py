"""The ``repro-hlts serve`` command tree, exercised in-process.

``serve run`` is made fast by monkeypatching the supervisor's
evaluator; the poison-job test uses the real path (an unknown
benchmark fails in milliseconds).  One subprocess test proves the
SIGTERM contract on an idle daemon.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro import cli
from repro.service import supervisor as supervisor_module


def _fake_record(request):
    return {"format": "repro-journal-v1", "kind": "cell",
            "benchmark": request.benchmark, "flow": request.flow,
            "bits": request.bits, "row": {"ok": True}, "alloc": []}


def _serve(*argv):
    return cli.main(["serve", *argv])


def _submit(tmp_path, capsys, benchmark="ex", *extra) -> str:
    rc = _serve("submit", benchmark, "--bits", "4",
                "--spool", str(tmp_path), *extra)
    out = capsys.readouterr().out
    assert rc == 0
    return out.split()[0]


class TestSubmitStatusResult:
    def test_submit_is_idempotent_and_prints_the_id(self, tmp_path,
                                                    capsys):
        jid = _submit(tmp_path, capsys)
        assert len(jid) == 64
        assert _serve("submit", "ex", "--bits", "4",
                      "--spool", str(tmp_path)) == 0
        assert "already spooled" in capsys.readouterr().out

    def test_round_trip_submit_run_status_result_stats(
            self, tmp_path, capsys, monkeypatch):
        monkeypatch.setattr(supervisor_module, "_execute_request",
                            lambda request, cache: _fake_record(request))
        jid = _submit(tmp_path, capsys)

        assert _serve("run", "--backoff-base", "0", "--no-cache",
                      "--spool", str(tmp_path)) == 0
        assert "1 done" in capsys.readouterr().out

        assert _serve("status", "--spool", str(tmp_path)) == 0
        table = capsys.readouterr().out
        assert jid[:12] in table and "done" in table

        assert _serve("status", jid[:8], "--spool", str(tmp_path)) == 0
        detail = json.loads(capsys.readouterr().out)
        assert detail["state"] == "done" and detail["attempts"] == 1

        assert _serve("result", jid[:8], "--spool", str(tmp_path)) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["kind"] == "cell" and record["benchmark"] == "ex"

        assert _serve("stats", "--spool", str(tmp_path)) == 0
        stats = capsys.readouterr().out
        assert "done" in stats and "jobs         1" in stats
        # the parent-level flag reads the same numbers
        assert _serve("--spool", str(tmp_path), "--stats") == 0

    def test_result_before_completion_fails(self, tmp_path, capsys):
        jid = _submit(tmp_path, capsys)
        assert _serve("result", jid[:8], "--spool", str(tmp_path)) == 1
        assert "no result" in capsys.readouterr().err

    def test_unknown_job_prefix_fails(self, tmp_path, capsys):
        _submit(tmp_path, capsys)
        assert _serve("status", "zzzz", "--spool", str(tmp_path)) == 1
        assert "no spooled job" in capsys.readouterr().err

    def test_serve_without_subcommand_errors(self, tmp_path, capsys):
        assert _serve("--spool", str(tmp_path)) == 2
        assert "needs a subcommand" in capsys.readouterr().err


class TestCancel:
    def test_cancel_then_cancel_again(self, tmp_path, capsys):
        jid = _submit(tmp_path, capsys)
        assert _serve("cancel", jid[:8], "--spool", str(tmp_path)) == 0
        assert "cancelled" in capsys.readouterr().out
        assert _serve("cancel", jid[:8], "--spool", str(tmp_path)) == 1
        assert "cannot cancel" in capsys.readouterr().err


class TestPoisonJob:
    def test_unknown_benchmark_quarantines_and_fails_the_run(
            self, tmp_path, capsys, monkeypatch):
        poison = _submit(tmp_path, capsys, "no-such-benchmark")
        monkeypatch.setattr(
            supervisor_module, "_execute_request",
            lambda request, cache: (_ for _ in ()).throw(
                KeyError(f"unknown benchmark {request.benchmark!r}"))
            if request.benchmark == "no-such-benchmark"
            else _fake_record(request))
        healthy = _submit(tmp_path, capsys)
        assert _serve("run", "--max-attempts", "2", "--backoff-base", "0",
                      "--no-cache", "--spool", str(tmp_path)) == 1
        assert "1 quarantined" in capsys.readouterr().out
        assert _serve("status", poison[:8], "--spool", str(tmp_path)) == 0
        detail = json.loads(capsys.readouterr().out)
        assert detail["state"] == "quarantined"
        assert detail["attempts"] == 2
        assert _serve("status", healthy[:8], "--spool", str(tmp_path)) == 0
        assert json.loads(capsys.readouterr().out)["state"] == "done"


class TestSignals:
    def test_sigterm_drains_an_idle_daemon_with_exit_zero(self, tmp_path):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--spool", str(tmp_path), "run", "--daemon", "--no-cache"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)
        try:
            time.sleep(1.0)
            assert daemon.poll() is None  # --daemon does not exit on drain
            daemon.send_signal(signal.SIGTERM)
            out, _ = daemon.communicate(timeout=30)
        finally:
            if daemon.poll() is None:
                daemon.kill()
        assert daemon.returncode == 0
        assert "stopped by SIGTERM" in out
