"""Unit tests for the behavioural optimisation passes."""


from repro.bench import load
from repro.dfg import DFGBuilder, OpKind
from repro.dfg.optimize import (eliminate_common_subexpressions,
                                eliminate_dead_code, fold_constants,
                                optimize)
from repro.rtl import evaluate_dfg


class TestConstantFolding:
    def test_folds_literal_op(self):
        b = DFGBuilder("cf")
        b.inputs("x")
        b.op("N1", "+", "c", 3, 4)
        b.op("N2", "*", "y", "c", "x")
        dfg, folded = fold_constants(b.build(), bits=8)
        assert folded == 1
        n1 = dfg.operation("N1")
        assert n1.kind == OpKind.MOVE
        assert evaluate_dfg(dfg, {"x": 2}, 8)["y"] == 14

    def test_folding_wraps(self):
        b = DFGBuilder("wrap")
        b.inputs("x")
        b.op("N1", "*", "c", 20, 20)
        b.op("N2", "+", "y", "c", "x")
        dfg, _ = fold_constants(b.build(), bits=8)
        assert evaluate_dfg(dfg, {"x": 0}, 8)["y"] == (400 % 256)

    def test_nothing_to_fold(self):
        dfg, folded = fold_constants(load("ex"), bits=8)
        assert folded == 0


class TestCSE:
    def test_diffeq_shares_u_dx(self):
        """Diffeq computes u*dx twice (N27 and N35): CSE merges them."""
        dfg, removed = eliminate_common_subexpressions(load("diffeq"))
        assert removed == 1
        assert dfg.operation("N35").kind == OpKind.MOVE

    def test_behaviour_preserved(self):
        original = load("diffeq")
        optimised, _ = eliminate_common_subexpressions(original)
        inputs = {"x": 3, "y": 5, "u": 7, "dx": 2, "a1": 50}
        before = evaluate_dfg(original, inputs, 8)
        after = evaluate_dfg(optimised, inputs, 8)
        for var in ("x1", "y1", "u1", "cond"):
            assert before[var] == after[var]

    def test_commutative_matching(self):
        b = DFGBuilder("comm")
        b.inputs("a", "b")
        b.op("N1", "+", "x", "a", "b")
        b.op("N2", "+", "y", "b", "a")   # same value, swapped operands
        b.op("N3", "*", "z", "x", "y")
        dfg, removed = eliminate_common_subexpressions(b.build())
        assert removed == 1

    def test_non_commutative_not_matched(self):
        b = DFGBuilder("noncomm")
        b.inputs("a", "b")
        b.op("N1", "-", "x", "a", "b")
        b.op("N2", "-", "y", "b", "a")
        b.op("N3", "*", "z", "x", "y")
        dfg, removed = eliminate_common_subexpressions(b.build())
        assert removed == 0

    def test_redefined_operand_not_matched(self):
        b = DFGBuilder("redef")
        b.inputs("a", "b")
        b.op("N1", "*", "x", "a", "b")
        b.op("N2", "+", "a", "a", "b")   # a redefined
        b.op("N3", "*", "y", "a", "b")   # NOT the same value as N1
        b.op("N4", "+", "z", "x", "y")
        dfg, removed = eliminate_common_subexpressions(b.build())
        assert removed == 0


class TestDCE:
    def test_removes_unreachable(self):
        b = DFGBuilder("dead")
        b.inputs("a", "b")
        b.op("N1", "+", "x", "a", "b")
        b.op("N2", "*", "junk", "a", "b")
        b.op("N3", "-", "junk2", "junk", "a")
        b.outputs("x")
        dfg, removed = eliminate_dead_code(b.build())
        assert removed == 2
        assert set(dfg.operations) == {"N1"}

    def test_keeps_condition_cone(self, loop_dfg):
        dfg, removed = eliminate_dead_code(loop_dfg)
        assert removed == 0

    def test_benchmarks_have_no_dead_code(self):
        for name in ("ex", "dct", "diffeq", "ewf"):
            _, removed = eliminate_dead_code(load(name))
            assert removed == 0, name


class TestPipeline:
    def test_fixpoint(self):
        dfg, stats = optimize(load("diffeq"))
        assert stats.cse_removed == 1
        # The MOVE left behind by CSE is alive (feeds g / y1).
        again, stats2 = optimize(dfg)
        assert stats2.total_removed == 0

    def test_optimised_design_synthesises(self):
        from repro.synth import run_ours
        dfg, _ = optimize(load("diffeq"))
        result = run_ours(dfg)
        result.design.validate()

    def test_chained_folding(self):
        b = DFGBuilder("chain-fold")
        b.inputs("x")
        b.op("N1", "+", "c1", 2, 3)
        b.op("N2", "*", "c2", "c1", 4)   # foldable after N1 folds? No:
        # c1 is a variable, so N2 stays; but MOVE chains still work.
        b.op("N3", "+", "y", "c2", "x")
        dfg, stats = optimize(b.build(), bits=8)
        assert stats.folded >= 1
        assert evaluate_dfg(dfg, {"x": 1}, 8)["y"] == 21
