"""Tests for the extension benchmarks (FIR/IIR/AR) across the stack."""

import random

import pytest

from repro.bench import EXTENSION_BENCHMARKS, load
from repro.etpn import default_design
from repro.gates import CompiledCircuit, expand_to_gates
from repro.gates.drive import run_functional
from repro.rtl import build_control_table, evaluate_dfg, generate_rtl
from repro.synth import run_camad, run_ours


class TestExtensionBenchmarks:
    @pytest.mark.parametrize("name", EXTENSION_BENCHMARKS)
    def test_build_and_validate(self, name):
        default_design(load(name)).validate()

    def test_fir8_structure(self):
        from repro.dfg import UnitClass
        counts = load("fir8").op_count_by_class()
        assert counts[UnitClass.MULTIPLIER] == 8
        assert counts[UnitClass.ALU] == 7

    def test_fir8_behaviour(self):
        dfg = load("fir8")
        inputs = {f"x{i}": i + 1 for i in range(8)}
        inputs.update({f"k{i}": 2 for i in range(8)})
        values = evaluate_dfg(dfg, inputs, 16)
        assert values["out"] == sum(2 * (i + 1) for i in range(8))

    def test_iir_multidef_state(self):
        dfg = load("iir")
        assert dfg.defs_of("w0") == ["A1", "A3"]

    @pytest.mark.parametrize("name", EXTENSION_BENCHMARKS)
    def test_flows_synthesise(self, name):
        dfg = load(name)
        run_ours(dfg).design.validate()
        run_camad(dfg).design.validate()

    @pytest.mark.parametrize("name", EXTENSION_BENCHMARKS)
    def test_gate_level_equivalence(self, name):
        design = run_ours(load(name)).design
        bits = 4
        rtl = generate_rtl(design, bits)
        table = build_control_table(design, rtl)
        circuit = CompiledCircuit(expand_to_gates(rtl))
        rng = random.Random(3)
        for _ in range(3):
            inputs = {v.name: rng.randrange(1 << bits)
                      for v in design.dfg.inputs()}
            expected = evaluate_dfg(design.dfg, inputs, bits)
            got = run_functional(design, rtl, table, circuit, inputs)
            for out_port, value in got.outputs.items():
                assert value == expected[out_port.removeprefix("out_")]
