"""Tests for analysis-driven fault pruning (sequential ternary
constant propagation at the gate level)."""

from __future__ import annotations

import random

from repro.atpg import (ATPGConfig, FaultSimulator, constant_lines,
                        full_fault_list, prune_untestable, run_atpg)
from repro.atpg.faults import Fault
from repro.gates.ternary import eval_gate as _eval_gate
from repro.bench import load
from repro.etpn.from_dfg import default_design
from repro.gates import expand_to_gates
from repro.gates.netlist import GateNetlist, GateType
from repro.gates.simulate import CompiledCircuit
from repro.rtl import generate_rtl


def bench_netlist(benchmark: str = "ex", bits: int = 4) -> GateNetlist:
    """A benchmark datapath netlist (rich in constant cones)."""
    return expand_to_gates(generate_rtl(default_design(load(benchmark)),
                                        bits))


def simulate_concretely(net: GateNetlist, sequence: list[dict[str, int]]
                        ) -> list[list[int]]:
    """Reference bit-level simulation, independent of CompiledCircuit.

    Returns the per-cycle list of every gate's value, starting from the
    all-zero DFF reset state.
    """
    state = {g.gid: 0 for g in net.dffs()}
    history = []
    for vector in sequence:
        values: list[int] = [0] * len(net.gates)
        for gate in net.gates:
            if gate.gtype is GateType.INPUT:
                values[gate.gid] = vector.get(gate.name, 0) & 1
            elif gate.gtype is GateType.CONST0:
                values[gate.gid] = 0
            elif gate.gtype is GateType.CONST1:
                values[gate.gid] = 1
            elif gate.gtype is GateType.DFF:
                values[gate.gid] = state[gate.gid]
            else:
                out = _eval_gate(gate.gtype,
                                 [values[f] for f in gate.fanins])
                assert out is not None
                values[gate.gid] = out
        for gate in net.dffs():
            state[gate.gid] = values[gate.fanins[0]]
        history.append(values)
    return history


class TestTernaryEval:
    def test_and_dominant_zero(self):
        assert _eval_gate(GateType.AND, [0, None]) == 0
        assert _eval_gate(GateType.AND, [1, None]) is None
        assert _eval_gate(GateType.AND, [1, 1]) == 1
        assert _eval_gate(GateType.NAND, [0, None]) == 1

    def test_or_dominant_one(self):
        assert _eval_gate(GateType.OR, [1, None]) == 1
        assert _eval_gate(GateType.OR, [0, None]) is None
        assert _eval_gate(GateType.NOR, [1, None]) == 0

    def test_xor_needs_all_known(self):
        assert _eval_gate(GateType.XOR, [1, None]) is None
        assert _eval_gate(GateType.XOR, [1, 0]) == 1
        assert _eval_gate(GateType.XNOR, [1, 1]) == 1

    def test_not_buf(self):
        assert _eval_gate(GateType.NOT, [0]) == 1
        assert _eval_gate(GateType.NOT, [None]) is None
        assert _eval_gate(GateType.BUF, [1]) == 1


class TestConstantLines:
    def test_constant_cone_found(self):
        net = GateNetlist("cone")
        a = net.add_input("a")
        zero = net.add(GateType.CONST0)
        g = net.add(GateType.AND, (a, zero))    # always 0
        h = net.add(GateType.NOT, (g,))         # always 1
        free = net.add(GateType.NOT, (a,))      # depends on the input
        net.outputs["o"] = h
        net.outputs["p"] = free
        constants = constant_lines(net)
        assert constants[zero] == 0
        assert constants[g] == 0
        assert constants[h] == 1
        assert free not in constants
        assert a not in constants

    def test_unexcitable_dff_stays_at_reset(self):
        # next(dff) = AND(input, dff): from reset 0 it can never leave.
        net = GateNetlist("stuck")
        a = net.add_input("a")
        dff = net.add_dff("q")
        g = net.add(GateType.AND, (a, dff))
        net.connect_dff(dff, g)
        net.outputs["o"] = g
        constants = constant_lines(net)
        assert constants[dff] == 0
        assert constants[g] == 0

    def test_toggling_dff_is_not_constant(self):
        # next(dff) = NOT(dff): 0, 1, 0, 1, ... joins to X.
        net = GateNetlist("toggle")
        dff = net.add_dff("q")
        inv = net.add(GateType.NOT, (dff,))
        net.connect_dff(dff, inv)
        net.outputs["o"] = inv
        constants = constant_lines(net)
        assert dff not in constants
        assert inv not in constants

    def test_soundness_against_reference_simulation(self):
        """No input sequence may drive a proved-constant line off its
        value."""
        net = bench_netlist("ex", 4)
        constants = constant_lines(net)
        assert constants, "datapath netlists must have constant cones"
        rng = random.Random(2026)
        input_names = sorted(net.inputs)
        sequence = [{name: rng.getrandbits(1) for name in input_names}
                    for _ in range(60)]
        for cycle, values in enumerate(simulate_concretely(net, sequence)):
            for gid, expected in constants.items():
                assert values[gid] == expected, \
                    f"gate {gid} proved {expected}, differs at {cycle}"


class TestPruneUntestable:
    def test_polarity_matters(self):
        faults = [Fault(3, 0), Fault(3, 1), Fault(7, 0)]
        kept, pruned = prune_untestable(faults, {3: 0})
        assert pruned == [Fault(3, 0)]
        assert Fault(3, 1) in kept and Fault(7, 0) in kept

    def test_empty_constants_prunes_nothing(self):
        faults = [Fault(1, 0), Fault(2, 1)]
        kept, pruned = prune_untestable(faults, {})
        assert kept == faults and pruned == []

    def test_pruned_faults_are_undetectable(self):
        """Fault-simulate every pruned fault: none may be detected."""
        net = bench_netlist("tseng", 4)
        faults = full_fault_list(net)
        _kept, pruned = prune_untestable(faults, constant_lines(net))
        assert pruned, "expected pruned faults on a datapath netlist"
        simulator = FaultSimulator(CompiledCircuit(net))
        rng = random.Random(7)
        detected: set[Fault] = set()
        for _ in range(6):
            sequence = [{name: rng.getrandbits(1)
                         for name in simulator.circuit.input_names}
                        for _ in range(30)]
            detected |= simulator.run_sequence(sequence, pruned)
        assert not detected, f"pruned faults detected: {sorted(detected)}"


class TestEngineIntegration:
    def test_run_atpg_reports_pruned(self):
        net = bench_netlist("ex", 4)
        result = run_atpg(net, ATPGConfig(deterministic=False,
                                          analysis_prune=True))
        assert result.untestable_by_analysis > 0
        assert result.summary()["pruned_by_analysis"] == \
            result.untestable_by_analysis

    def test_prune_off_reports_zero(self):
        net = bench_netlist("ex", 4)
        result = run_atpg(net, ATPGConfig(deterministic=False,
                                          analysis_prune=False))
        assert result.untestable_by_analysis == 0

    def test_pruning_keeps_denominator_and_coverage(self):
        """Pruned faults stay in the denominator, and — being genuinely
        undetectable — pruning never changes what gets detected."""
        net = bench_netlist("ex", 4)
        with_prune = run_atpg(net, ATPGConfig(deterministic=False,
                                              analysis_prune=True))
        without = run_atpg(net, ATPGConfig(deterministic=False,
                                           analysis_prune=False))
        assert with_prune.total_faults == without.total_faults
        assert with_prune.detected == without.detected
        assert with_prune.untestable_by_analysis + with_prune.detected \
            <= with_prune.total_faults
