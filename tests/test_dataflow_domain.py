"""Tests for the abstract domain: intervals × known bits.

The soundness contract (every concrete result of ``apply_op`` on
members of the operand abstractions is a member of the transferred
abstraction) is brute-forced exhaustively at 3 bits over every
operation kind, and the lattice operations (join, widen, reduce) are
checked directly.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.analysis.dataflow import (AbstractValue, join, reduce, transfer,
                                     widen)
from repro.dfg.ops import OpKind, arity
from repro.rtl.semantics import apply_op, mask

ALL_KINDS = list(OpKind)


def members(v: AbstractValue, bits: int) -> list[int]:
    """Every concrete word the abstraction admits (small widths only)."""
    return [x for x in range(mask(bits) + 1) if v.contains(x)]


def random_abstractions(bits: int, rng: random.Random, count: int
                        ) -> list[AbstractValue]:
    """Non-empty reduced abstractions covering consts, ranges and bit
    patterns."""
    m = mask(bits)
    out = [AbstractValue.top(bits)]
    for _ in range(count):
        lo = rng.randint(0, m)
        hi = rng.randint(lo, m)
        km = rng.randint(0, m)
        witness = rng.randint(lo, hi)
        out.append(reduce(lo, hi, km, witness & km, bits))
    for value in range(min(m + 1, 8)):
        out.append(AbstractValue.const(value, bits))
    return [v for v in out if members(v, bits)]


class TestAbstractValue:
    def test_top_contains_everything(self):
        top = AbstractValue.top(4)
        assert all(top.contains(x) for x in range(16))
        assert not top.is_const

    def test_const_is_singleton(self):
        c = AbstractValue.const(5, 4)
        assert c.is_const and c.const_value == 5
        assert members(c, 4) == [5]
        assert c.known_bit_count() == 4

    def test_const_wraps_to_width(self):
        assert AbstractValue.const(21, 4).const_value == 5

    def test_range_reduces_leading_zeros(self):
        r = AbstractValue.range(0, 3, 8)
        # Bits 2..7 are proved zero by the interval.
        assert r.known_mask == 0xFC
        assert r.known_value == 0
        assert r.required_width() == 2

    def test_bit_query(self):
        v = AbstractValue.const(0b1010, 4)
        assert [v.bit(i) for i in range(4)] == [0, 1, 0, 1]
        assert AbstractValue.top(4).bit(0) is None

    def test_tuple_round_trip(self):
        v = AbstractValue.range(3, 9, 8)
        assert AbstractValue.from_tuple(v.to_tuple()) == v

    def test_required_width_minimum_one(self):
        assert AbstractValue.const(0, 8).required_width() == 1


class TestReduce:
    def test_collapsed_interval_pins_bits(self):
        v = reduce(6, 6, 0, 0, 4)
        assert v.is_const and v.known_mask == 0xF and v.known_value == 6

    def test_known_bits_clamp_interval(self):
        # Bit 3 proved 1 forces lo >= 8.
        v = reduce(0, 15, 0b1000, 0b1000, 4)
        assert v.lo == 8

    def test_reduce_is_sound(self):
        bits = 4
        rng = random.Random(7)
        for _ in range(500):
            lo = rng.randint(0, 15)
            hi = rng.randint(lo, 15)
            km = rng.randint(0, 15)
            witness = rng.randint(lo, hi)
            v = reduce(lo, hi, km, witness & km, bits)
            for x in range(16):
                if lo <= x <= hi and (x & km) == (witness & km):
                    assert v.contains(x), (v, x)


class TestJoinWiden:
    def test_join_is_upper_bound(self):
        bits = 4
        rng = random.Random(11)
        values = random_abstractions(bits, rng, 40)
        for a, b in itertools.product(values[:20], values[:20]):
            j = join(a, b, bits)
            for x in members(a, bits) + members(b, bits):
                assert j.contains(x)

    def test_widen_covers_join_and_terminates(self):
        bits = 8
        rng = random.Random(13)
        values = random_abstractions(bits, rng, 30)
        for a, b in zip(values, values[1:]):
            w = widen(a, b, bits)
            j = join(a, b, bits)
            assert w.lo <= j.lo and w.hi >= j.hi
            # Widening is idempotent from the widened point.
            assert widen(w, join(w, b, bits), bits) == widen(
                w, join(w, b, bits), bits)

    def test_widen_growing_bound_jumps_past_the_join(self):
        # The growing bound jumps to its extreme; the known-bits
        # component (both operands fit 4 bits) clamps it back to 15 —
        # still strictly past the join's hi of 11.
        a = AbstractValue.range(0, 10, 8)
        b = AbstractValue.range(0, 11, 8)
        assert widen(a, b, 8).hi == 15
        c = AbstractValue.range(5, 10, 8)
        d = AbstractValue.range(4, 10, 8)
        assert widen(c, d, 8).lo == 0

    def test_widen_chain_terminates_quickly(self):
        # A bound growing by one each step must stabilise in O(1)
        # widenings, not O(2**bits).
        bits = 16
        current = AbstractValue.range(0, 1, bits)
        for step in range(2, 40):
            nxt = widen(current, AbstractValue.range(0, step, bits), bits)
            if nxt == current:
                break
            current = nxt
        else:
            raise AssertionError("widening chain did not stabilise")
        assert step < 10


class TestTransferSoundness:
    """The exhaustive contract: 3 bits, every kind, every member."""

    BITS = 3

    @pytest.mark.parametrize("kind", ALL_KINDS, ids=str)
    def test_exhaustive_small_width(self, kind):
        bits = self.BITS
        rng = random.Random(hash(kind.name) & 0xFFFF)
        values = random_abstractions(bits, rng, 25)
        for a, b in itertools.product(values, values):
            result = transfer(kind, a, b, bits)
            bs = [0] if arity(kind) == 1 else members(b, bits)
            for av in members(a, bits):
                for bv in bs:
                    concrete = apply_op(kind, av, bv, bits)
                    assert result.contains(concrete), (
                        f"{kind} {a} {b}: {av}op{bv}={concrete} "
                        f"escapes {result}")

    def test_const_operands_match_reference(self):
        bits = 5
        for kind in ALL_KINDS:
            for av, bv in [(3, 4), (0, 0), (31, 31), (17, 2)]:
                a = AbstractValue.const(av, bits)
                b = AbstractValue.const(bv, bits)
                result = transfer(kind, a, b, bits)
                expected = apply_op(kind, av, 0 if arity(kind) == 1 else bv,
                                    bits)
                assert result.is_const and result.const_value == expected


class TestTransferPrecision:
    """Precision floors: facts the engine's consumers rely on."""

    def test_add_of_small_ranges_stays_exact(self):
        a = AbstractValue.range(0, 10, 8)
        b = AbstractValue.range(5, 20, 8)
        r = transfer(OpKind.ADD, a, b, 8)
        assert (r.lo, r.hi) == (5, 30)

    def test_and_with_mask_proves_zeros(self):
        a = AbstractValue.top(8)
        b = AbstractValue.const(0x0F, 8)
        r = transfer(OpKind.AND, a, b, 8)
        assert r.known_mask & 0xF0 == 0xF0
        assert r.required_width() <= 4

    def test_decided_comparison_is_constant(self):
        a = AbstractValue.range(0, 3, 8)
        b = AbstractValue.range(10, 20, 8)
        assert transfer(OpKind.LT, a, b, 8).const_value == 1
        assert transfer(OpKind.GT, a, b, 8).const_value == 0
        assert transfer(OpKind.EQ, a, b, 8).const_value == 0

    def test_undecided_comparison_is_boolean(self):
        r = transfer(OpKind.LT, AbstractValue.top(8), AbstractValue.top(8), 8)
        assert (r.lo, r.hi) == (0, 1)
        assert r.known_mask == 0xFE  # high bits proved zero

    def test_shl_by_const_keeps_low_zeros(self):
        r = transfer(OpKind.SHL, AbstractValue.top(8),
                     AbstractValue.const(3, 8), 8)
        assert r.known_mask & 0b111 == 0b111
        assert r.known_value & 0b111 == 0

    def test_shr_by_const_clears_high_bits(self):
        r = transfer(OpKind.SHR, AbstractValue.top(8),
                     AbstractValue.const(3, 8), 8)
        assert r.hi == 31

    def test_mul_preserves_trailing_known_bits(self):
        a = transfer(OpKind.SHL, AbstractValue.top(8),
                     AbstractValue.const(2, 8), 8)  # low 2 bits zero
        r = transfer(OpKind.MUL, a, a, 8)
        assert r.known_mask & 0b11 == 0b11
        assert r.known_value & 0b11 == 0

    def test_div_by_zero_saturates(self):
        r = transfer(OpKind.DIV, AbstractValue.top(8),
                     AbstractValue.const(0, 8), 8)
        assert r.is_const and r.const_value == 255

    def test_move_is_identity(self):
        v = AbstractValue.range(2, 9, 8)
        assert transfer(OpKind.MOVE, v, AbstractValue.const(0, 8), 8) == v
