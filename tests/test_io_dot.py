"""Unit tests for design serialisation and dot export."""

import json

import pytest

from repro.bench import load
from repro.errors import ReproError
from repro.etpn import default_design
from repro.etpn.dot import control_net_to_dot, datapath_to_dot
from repro.io import (design_from_dict, design_to_dict, dfg_from_dict,
                      dfg_to_dict, load_design, save_design)
from repro.rtl import evaluate_dfg
from repro.synth import run_ours


class TestDfgRoundTrip:
    @pytest.mark.parametrize("name", ["ex", "dct", "diffeq", "tseng"])
    def test_roundtrip_structure(self, name):
        original = load(name)
        rebuilt = dfg_from_dict(dfg_to_dict(original))
        assert rebuilt.name == original.name
        assert set(rebuilt.operations) == set(original.operations)
        assert set(rebuilt.variables) == set(original.variables)
        assert rebuilt.loop_condition == original.loop_condition

    def test_roundtrip_behaviour(self):
        original = load("diffeq")
        rebuilt = dfg_from_dict(dfg_to_dict(original))
        inputs = {"x": 3, "y": 5, "u": 7, "dx": 2, "a1": 50}
        assert (evaluate_dfg(original, inputs, 8)
                == evaluate_dfg(rebuilt, inputs, 8))

    def test_constants_preserved(self):
        rebuilt = dfg_from_dict(dfg_to_dict(load("diffeq")))
        from repro.dfg.graph import Const
        assert rebuilt.operation("N26").srcs[0] == Const(3)

    def test_format_tag_checked(self):
        with pytest.raises(ReproError):
            dfg_from_dict({"format": "other"})


class TestDesignRoundTrip:
    def test_roundtrip_validates(self):
        design = run_ours(load("ex")).design
        rebuilt = design_from_dict(design_to_dict(design))
        assert rebuilt.steps == design.steps
        assert rebuilt.binding.module_of == design.binding.module_of
        assert rebuilt.binding.register_of == design.binding.register_of
        assert rebuilt.label == design.label
        assert rebuilt.summary() == design.summary()

    def test_file_roundtrip(self, tmp_path):
        design = run_ours(load("diffeq")).design
        path = tmp_path / "design.json"
        save_design(design, path)
        rebuilt = load_design(path)
        assert rebuilt.steps == design.steps
        # The saved file is plain JSON a human can read.
        data = json.loads(path.read_text())
        assert data["format"] == "repro-design-v1"

    def test_tampered_schedule_rejected(self, tmp_path):
        from repro.errors import ReproError
        design = run_ours(load("ex")).design
        data = design_to_dict(design)
        first_op = next(iter(data["steps"]))
        data["steps"][first_op] = 99  # break precedence/binding
        with pytest.raises(ReproError):
            design_from_dict(data)

    def test_format_tag_checked(self):
        with pytest.raises(ReproError):
            design_from_dict({"format": "nope"})


class TestDotExport:
    def test_datapath_dot_structure(self):
        design = default_design(load("tseng"))
        dot = datapath_to_dot(design.datapath)
        assert dot.startswith('digraph "tseng"')
        assert dot.rstrip().endswith("}")
        for node_id in design.datapath.nodes:
            assert f'"{node_id}"' in dot

    def test_condition_arcs_dashed(self):
        design = default_design(load("diffeq"))
        dot = datapath_to_dot(design.datapath)
        assert "style=dashed" in dot

    def test_control_net_dot(self):
        design = default_design(load("diffeq"))
        dot = control_net_to_dot(design.control_net)
        assert "t_loop" in dot
        assert "[cond]" in dot
        assert "peripheries=2" in dot  # the initial place

    def test_dot_is_parseable_brackets(self):
        design = default_design(load("ex"))
        dot = datapath_to_dot(design.datapath)
        assert dot.count("{") == dot.count("}")
