"""Tests for harness rendering helpers that need no ATPG run."""

import pytest

from repro.bench import load
from repro.harness import (ExperimentConfig, render_lifetimes,
                           render_schedule, render_sharing, synthesize_flow)
from repro.harness.experiment import PAPER_PARAMS, module_symbol
from repro.synth import run_camad


class TestExperimentConfig:
    def test_quick_profiles(self):
        q4 = ExperimentConfig.quick(4)
        q16 = ExperimentConfig.quick(16)
        assert q4.fault_fraction == 1.0
        assert q16.fault_fraction < q4.fault_fraction
        assert q16.random.max_sequences <= q4.random.max_sequences

    def test_paper_params_cover_published_widths(self):
        assert set(PAPER_PARAMS) == {4, 8, 16}


class TestSynthesizeFlow:
    @pytest.mark.parametrize("flow", ["camad", "approach1", "approach2",
                                      "ours"])
    def test_all_flows_valid(self, flow):
        design = synthesize_flow("tseng", flow, 8)
        design.validate()
        assert design.label == flow

    def test_unknown_flow(self):
        with pytest.raises(KeyError):
            synthesize_flow("ex", "bogus", 8)


class TestRenderers:
    def test_module_symbol(self):
        design = run_camad(load("ex")).design
        symbols = {module_symbol(design, m)
                   for m in design.binding.modules()}
        assert "*" in symbols           # multiplier group present

    def test_lifetimes_chart_shape(self):
        design = run_camad(load("tseng")).design
        chart = render_lifetimes(design)
        lines = chart.splitlines()
        # Header + one row per register-needing variable.
        needed = sum(v.needs_register()
                     for v in design.dfg.variables.values())
        assert len(lines) == 2 + needed
        assert "#" in chart

    def test_schedule_idle_steps_marked(self):
        from repro.etpn import Design
        from repro.alloc import default_binding
        from repro.bench import load
        dfg = load("tseng")
        # Artificial schedule with a hole at step 1.
        from repro.dfg.analysis import asap_steps
        steps = {o: s * 2 for o, s in asap_steps(dfg).items()}
        design = Design(dfg, steps, default_binding(dfg))
        text = render_schedule(design)
        assert "(idle)" in text

    def test_sharing_render_empty_when_no_sharing(self):
        from repro.etpn import default_design
        design = default_design(load("tseng"))
        text = render_sharing(design)
        assert "share" not in text.replace("Sharing", "")
