"""Unit tests for the balance principle and sequential depth (SR1)."""

import pytest

from repro.alloc import default_binding
from repro.etpn import DataPath, default_design
from repro.testability import (analyze, balance_score, max_sequential_depth,
                               merged_testability, rank_pairs,
                               register_depths, sequential_depth_metric)
from repro.testability.metrics import NodeTestability


def node(nid, cc, sc, co, so):
    return NodeTestability(nid, cc=cc, sc=sc, co=co, so=so)


class TestBalanceScore:
    def test_merged_inherits_best_of_each(self):
        a = node("a", cc=1.0, sc=0.0, co=0.1, so=5.0)   # C-dominant
        b = node("b", cc=0.1, sc=5.0, co=1.0, so=0.0)   # O-dominant
        merged_c, merged_o = merged_testability(a, b)
        assert merged_c == a.c_score
        assert merged_o == b.o_score

    def test_opposite_imbalance_preferred(self):
        c_node = node("c", 1.0, 0.0, 0.1, 5.0)
        o_node = node("o", 0.1, 5.0, 1.0, 0.0)
        c_node2 = node("c2", 0.9, 0.0, 0.1, 5.0)
        good = balance_score(c_node, o_node)
        bad = balance_score(c_node, c_node2)
        assert good.key() > bad.key()

    def test_rank_pairs_orders_by_balance(self, chain_dfg):
        analysis = analyze(default_design(chain_dfg).datapath)
        # R_a (near input) with R_z (near output) should rank above
        # R_a with R_x (both nearer the input side).
        ranked = rank_pairs(analysis, [("R_a", "R_x"), ("R_a", "R_z")])
        assert ranked[0] == ("R_a", "R_z")

    def test_rank_deterministic(self, chain_dfg):
        analysis = analyze(default_design(chain_dfg).datapath)
        pairs = [("R_a", "R_x"), ("R_a", "R_z"), ("R_x", "R_z")]
        assert rank_pairs(analysis, pairs) == rank_pairs(analysis, pairs)


class TestSequentialDepth:
    def test_chain_depths(self, chain_dfg):
        dp = default_design(chain_dfg).datapath
        depths = register_depths(dp)
        # Input registers sit at depth_in 1 (one clocked stage from PI).
        assert depths["R_a"].depth_in == 1.0
        # Depth is a shortest *path*: R_z is two stages from PI_d via
        # R_d -> M_N3 -> R_z (the side operand provides the short route).
        assert depths["R_z"].depth_in == 2.0
        # ...but directly observable at PO_z.
        assert depths["R_z"].depth_out == 0.0

    def test_depth_out_counts_stages(self, chain_dfg):
        dp = default_design(chain_dfg).datapath
        depths = register_depths(dp)
        # R_a must traverse x, y, z registers to reach the output.
        assert depths["R_a"].depth_out == 3.0

    def test_metric_totals(self, chain_dfg):
        dp = default_design(chain_dfg).datapath
        assert sequential_depth_metric(dp) == pytest.approx(
            sum(d.total for d in register_depths(dp).values()))
        assert max_sequential_depth(dp) >= 4.0

    def test_register_merge_reduces_depth(self, chain_dfg):
        """Merging an input-side and output-side register shortens SR1
        depth, the effect Figure 1 of the paper illustrates."""
        base = default_design(chain_dfg).datapath
        merged_binding = default_binding(chain_dfg).merge_registers("R_a", "R_y")
        merged = DataPath(chain_dfg, merged_binding)
        assert sequential_depth_metric(merged) < sequential_depth_metric(base)
