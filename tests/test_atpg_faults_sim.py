"""Unit tests for fault lists and the parallel-fault simulator."""

import pytest

from repro.atpg import Fault, FaultSimulator, full_fault_list, sample_faults
from repro.gates import CompiledCircuit, GateNetlist, GateType


def and_circuit():
    net = GateNetlist("and2")
    a = net.add_input("a")
    b = net.add_input("b")
    g = net.add(GateType.AND, (a, b))
    net.set_output("o", g)
    return net, a, b, g


class TestFaultLists:
    def test_two_faults_per_gate(self):
        net, a, b, g = and_circuit()
        faults = full_fault_list(net)
        assert Fault(g, 0) in faults and Fault(g, 1) in faults
        assert Fault(a, 0) in faults
        assert len(faults) == 6

    def test_const_faults_collapsed(self):
        net = GateNetlist("c")
        c0 = net.add(GateType.CONST0)
        c1 = net.add(GateType.CONST1)
        net.set_output("a", c0)
        net.set_output("b", c1)
        faults = set(full_fault_list(net))
        assert faults == {Fault(c0, 1), Fault(c1, 0)}

    def test_buf_not_collapsed_away(self):
        net = GateNetlist("b")
        a = net.add_input("a")
        buf = net.add(GateType.BUF, (a,))
        inv = net.add(GateType.NOT, (a,))
        net.set_output("x", buf)
        net.set_output("y", inv)
        gids = {f.gid for f in full_fault_list(net)}
        assert buf not in gids and inv not in gids
        assert a in gids

    def test_sampling(self):
        net, *_ = and_circuit()
        faults = full_fault_list(net)
        sampled = sample_faults(faults, 0.5, seed=3)
        assert len(sampled) == 3
        assert set(sampled) <= set(faults)
        assert sample_faults(faults, 1.0) == faults

    def test_sampling_deterministic(self):
        net, *_ = and_circuit()
        faults = full_fault_list(net)
        assert sample_faults(faults, 0.5, 1) == sample_faults(faults, 0.5, 1)

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            sample_faults([], 0.0)


class TestFaultSimulation:
    def test_combinational_detection(self):
        net, a, b, g = and_circuit()
        sim = FaultSimulator(CompiledCircuit(net))
        # a=1,b=1 -> o=1 detects o/sa0; a=0 -> o=0 detects o/sa1.
        detected = sim.run_sequence([{"a": 1, "b": 1}, {"a": 0, "b": 0}],
                                    [Fault(g, 0), Fault(g, 1)])
        assert detected == {Fault(g, 0), Fault(g, 1)}

    def test_undetected_without_activation(self):
        net, a, b, g = and_circuit()
        sim = FaultSimulator(CompiledCircuit(net))
        # o is 0 in the good machine; sa0 never observed.
        detected = sim.run_sequence([{"a": 0, "b": 1}], [Fault(g, 0)])
        assert detected == set()

    def test_input_fault_masked_by_gate(self):
        net, a, b, g = and_circuit()
        sim = FaultSimulator(CompiledCircuit(net))
        # a/sa1 with b=0 is masked by the AND gate.
        assert sim.run_sequence([{"a": 0, "b": 0}], [Fault(a, 1)]) == set()
        assert sim.run_sequence([{"a": 0, "b": 1}],
                                [Fault(a, 1)]) == {Fault(a, 1)}

    def test_sequential_fault_needs_time(self):
        # q' = q | a; o = q.  q/sa0 needs a 1 loaded, then observed.
        net = GateNetlist("seq")
        q = net.add_dff("q")
        a = net.add_input("a")
        d = net.add(GateType.OR, (q, a))
        net.connect_dff(q, d)
        net.set_output("o", q)
        sim = FaultSimulator(CompiledCircuit(net))
        fault = Fault(q, 0)
        # One cycle: fault effect not yet at the flop output (both 0).
        assert sim.run_sequence([{"a": 1}], [fault]) == set()
        # Two cycles: good machine shows 1, faulty stuck at 0.
        assert sim.run_sequence([{"a": 1}, {"a": 0}], [fault]) == {fault}

    def test_more_than_63_faults(self):
        """Fault grouping across multiple passes."""
        net = GateNetlist("wide")
        inputs = [net.add_input(f"i{k}") for k in range(40)]
        gates = []
        for k, gid in enumerate(inputs):
            g = net.add(GateType.NOT, (gid,))
            gates.append(g)
            net.set_output(f"o{k}", g)
        sim = FaultSimulator(CompiledCircuit(net))
        faults = [Fault(g, v) for g in gates for v in (0, 1)]
        assert len(faults) == 80  # > 63: needs two groups
        vec_all0 = {f"i{k}": 0 for k in range(40)}   # outputs all 1
        vec_all1 = {f"i{k}": 1 for k in range(40)}   # outputs all 0
        detected = sim.run_sequence([vec_all0, vec_all1], faults)
        assert detected == set(faults)

    def test_stats_accumulate(self):
        net, a, b, g = and_circuit()
        sim = FaultSimulator(CompiledCircuit(net))
        sim.run_sequence([{"a": 1, "b": 1}], [Fault(g, 0)])
        assert sim.stats.cycles_simulated >= 1
        assert sim.stats.groups_simulated == 1
