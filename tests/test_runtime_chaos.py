"""Chaos primitives, the merger loop's failure barriers, and TST004."""

import pytest

from repro.bench import load
from repro.errors import ScheduleError
from repro.runtime import (ACTION_CANCEL_BUDGET, ACTION_CORRUPT,
                           ACTION_CRASH, ACTION_RAISE, Budget, ChaosCrash,
                           ChaosError, ChaosInjector, Injection,
                           active_injector, chaos_point)
from repro.synth import run_ours


class TestInjection:
    def test_unknown_seam_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos seam"):
            Injection("no.such.seam", ACTION_RAISE)

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos action"):
            Injection("synth.candidate_eval", "explode")

    def test_window_validation(self):
        with pytest.raises(ValueError):
            Injection("synth.candidate_eval", ACTION_RAISE, at_visit=0)
        with pytest.raises(ValueError):
            Injection("synth.candidate_eval", ACTION_RAISE, count=0)

    def test_fires_at_window(self):
        injection = Injection("synth.candidate_eval", ACTION_RAISE,
                              at_visit=3, count=2)
        assert [injection.fires_at(v) for v in range(1, 6)] == \
            [False, False, True, True, False]


class TestChaosPoint:
    def test_noop_when_inactive(self):
        assert active_injector() is None
        assert chaos_point("synth.candidate_eval", "payload") == "payload"

    def test_unregistered_seam_rejected_when_active(self, chaos):
        chaos(Injection("synth.candidate_eval", ACTION_RAISE, at_visit=99))
        with pytest.raises(ValueError, match="unregistered seam"):
            chaos_point("not.a.seam")

    def test_injectors_do_not_nest(self, chaos):
        chaos()
        with pytest.raises(RuntimeError, match="do not nest"):
            with ChaosInjector():
                pass

    def test_raise_fires_in_window_only(self, chaos):
        injector = chaos(Injection("synth.candidate_eval", ACTION_RAISE,
                                   at_visit=2))
        assert chaos_point("synth.candidate_eval", "ok") == "ok"
        with pytest.raises(ChaosError):
            chaos_point("synth.candidate_eval", "ok")
        assert chaos_point("synth.candidate_eval", "ok") == "ok"
        assert injector.fired == [("synth.candidate_eval", ACTION_RAISE, 2)]

    def test_crash_is_not_a_repro_error(self, chaos):
        chaos(Injection("journal.pre_write", ACTION_CRASH))
        with pytest.raises(ChaosCrash):
            chaos_point("journal.pre_write")
        from repro.errors import ReproError
        assert not issubclass(ChaosCrash, ReproError)

    def test_cancel_budget_action(self, chaos):
        chaos(Injection("atpg.podem_step", ACTION_CANCEL_BUDGET))
        budget = Budget.unlimited()
        chaos_point("atpg.podem_step", budget)
        assert budget.exhausted()
        assert budget.reason == "chaos"

    def test_corrupt_is_seed_deterministic(self, chaos):
        chaos(Injection("synth.pre_reschedule", ACTION_CORRUPT, count=2),
              seed=1)
        assert chaos_point("synth.pre_reschedule", ["a", "b", "c"]) == \
            ["a", "b", "c", "b"]
        assert chaos_point("synth.pre_reschedule", ["a", "b", "c"]) == \
            ["a", "b", "c", "b"]


class TestMergerBarriers:
    """One misbehaving candidate must never abort Algorithm 1."""

    def test_candidate_raise_is_skipped_and_recorded(self, chaos):
        chaos(Injection("synth.candidate_eval", ACTION_RAISE, count=2))
        result = run_ours(load("ex"))
        assert len(result.skipped) == 2
        assert all("ChaosError" in s.reason for s in result.skipped)
        assert result.iterations >= 1
        assert not result.degraded  # skips alone are not degradation
        result.design.validate()

    def test_corrupted_order_becomes_schedule_error_skip(self, chaos):
        chaos(Injection("synth.pre_reschedule", ACTION_CORRUPT))
        result = run_ours(load("ex"))
        assert len(result.skipped) == 1
        assert "ScheduleError" in result.skipped[0].reason
        result.design.validate()

    def test_reschedule_infeasible_everywhere_yields_unmerged_design(
            self, monkeypatch):
        import repro.synth.merger as merger
        monkeypatch.setattr(merger, "reschedule",
                            lambda *args, **kwargs: None)
        result = run_ours(load("ex"))
        assert result.iterations == 0  # no candidate could reschedule
        assert not result.degraded
        result.design.validate()

    def test_reschedule_intermittently_infeasible_is_survived(
            self, monkeypatch):
        import repro.synth.merger as merger
        real = merger.reschedule
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] % 2 == 0:
                return None  # "no feasible schedule" every other call
            return real(*args, **kwargs)

        monkeypatch.setattr(merger, "reschedule", flaky)
        result = run_ours(load("ex"))
        assert result.iterations >= 1
        result.design.validate()

    def test_reschedule_raising_is_recorded_as_skip(self, monkeypatch):
        import repro.synth.merger as merger

        def broken(*args, **kwargs):
            raise ScheduleError("simulated rescheduler defect")

        monkeypatch.setattr(merger, "reschedule", broken)
        result = run_ours(load("ex"))
        assert result.iterations == 0
        assert len(result.skipped) >= 1
        assert all("ScheduleError" in s.reason for s in result.skipped)
        result.design.validate()


class TestScenarioMatrix:
    def test_full_matrix_survives(self, tmp_path):
        from repro.runtime import run_scenarios, scenario_names
        outcomes = run_scenarios(bits=4, workdir=tmp_path)
        assert [o.name for o in outcomes] == scenario_names()
        assert len(outcomes) >= 7
        failed = [f"{o.name}: {o.detail}" for o in outcomes if not o.ok]
        assert not failed, failed

    def test_unknown_scenario_rejected(self):
        from repro.runtime import run_scenarios
        with pytest.raises(KeyError):
            run_scenarios(["definitely-not-registered"])


class TestConvergenceSurfacing:
    def test_analysis_converges_on_benchmarks(self):
        from repro.etpn.from_dfg import default_design
        from repro.testability.analysis import analyze
        analysis = analyze(default_design(load("ex")).datapath)
        assert analysis.forward_converged
        assert analysis.backward_converged
        assert analysis.converged

    def test_tst004_fires_when_iteration_ceiling_hit(self, monkeypatch):
        import repro.testability.analysis as ta
        from repro.lint import lint_pipeline
        monkeypatch.setattr(ta, "_MAX_ITERATIONS", 0)
        report = lint_pipeline(load("ex"), bits=4, gates=False)
        codes = [d.code for d in report.diagnostics]
        assert codes.count("TST004") == 2  # forward and backward

    def test_tst004_silent_when_converged(self):
        from repro.lint import lint_pipeline
        report = lint_pipeline(load("ex"), bits=4, gates=False)
        assert all(d.code != "TST004" for d in report.diagnostics)
