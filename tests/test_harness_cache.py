"""Content-hash result cache: keys, tiers, hit/cold equivalence."""

from repro.atpg import RandomPhaseConfig
from repro.bench import load
from repro.harness import ExperimentConfig, render_table, \
    synthesize_flow_result
from repro.harness.cache import (BIT_INDEPENDENT_FLOWS, ResultCache,
                                 cell_key, run_cell_cached, synthesis_key)
from repro.runtime import Budget
from repro.synth import SynthesisParams


def _tiny_config(bits: int) -> ExperimentConfig:
    return ExperimentConfig(
        bits=bits, fault_fraction=0.25,
        random=RandomPhaseConfig(max_sequences=4, saturation=2,
                                 sequence_length=12),
        max_backtracks=16)


class TestKeys:
    def test_synthesis_key_is_stable(self):
        dfg = load("ex")
        assert synthesis_key(dfg, "camad") == synthesis_key(dfg, "camad")

    def test_baseline_keys_are_bit_independent(self):
        dfg = load("ex")
        for flow in sorted(BIT_INDEPENDENT_FLOWS):
            assert synthesis_key(dfg, flow, bits=4) == \
                synthesis_key(dfg, flow, bits=16)

    def test_ours_key_covers_bits_and_params(self):
        dfg = load("ex")
        base = synthesis_key(dfg, "ours", SynthesisParams(), 4)
        assert base != synthesis_key(dfg, "ours", SynthesisParams(), 8)
        assert base != synthesis_key(dfg, "ours", SynthesisParams(k=6), 4)

    def test_key_covers_the_dfg(self):
        assert synthesis_key(load("ex"), "camad") != \
            synthesis_key(load("dct"), "camad")

    def test_cell_key_covers_the_config(self):
        dfg = load("ex")
        assert cell_key(dfg, "camad", 4, _tiny_config(4)) != \
            cell_key(dfg, "camad", 4, ExperimentConfig(bits=4))

    def test_cell_key_covers_narrowing_knobs(self):
        # A narrowed cell and a plain one must never share a key, nor
        # may two narrowed cells with different input assumptions.
        dfg = load("ex")
        plain = cell_key(dfg, "ours", 16, ExperimentConfig(bits=16))
        narrowed = cell_key(dfg, "ours", 16,
                            ExperimentConfig(bits=16, narrow_widths=True))
        assumed = cell_key(dfg, "ours", 16,
                           ExperimentConfig(bits=16, narrow_widths=True,
                                            narrow_input_bits=8))
        assert len({plain, narrowed, assumed}) == 3


class TestSynthesisTier:
    def test_baseline_synthesis_shared_across_widths(self):
        cache = ResultCache()
        synthesize_flow_result("ex", "camad", 4, cache=cache)
        before = cache.stats.snapshot()
        wide = synthesize_flow_result("ex", "camad", 16, cache=cache)
        delta = cache.stats.delta(before)
        assert delta.memory_hits == 1 and delta.misses == 0
        wide.design.validate()  # the restored design is structurally sound

    def test_degraded_synthesis_never_stored(self):
        class Starved:
            degraded = True
        cache = ResultCache()
        cache.put_synthesis("k", Starved())  # type: ignore[arg-type]
        assert len(cache) == 0


class TestCellTier:
    def test_hit_rows_equal_cold_rows(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path / "cache")
        cold, cold_prov = run_cell_cached("ex", "camad", _tiny_config(4),
                                          cache=cache)
        assert cold_prov["cell_cache"] == "miss"
        warm, warm_prov = run_cell_cached("ex", "camad", _tiny_config(4),
                                          cache=cache)
        assert warm_prov["cell_cache"] == "hit"
        assert warm_prov["cache_key"] == cold_prov["cache_key"]
        # The hit restores the stored record verbatim, wall clock and
        # all, so the rendered table is byte-identical to the cold run.
        assert warm.row() == cold.row()
        assert render_table("ex", [warm]) == render_table("ex", [cold])

    def test_disk_tier_survives_a_new_process_worth_of_state(self, tmp_path):
        shared = tmp_path / "cache"
        first = ResultCache(cache_dir=shared)
        run_cell_cached("ex", "camad", _tiny_config(4), cache=first)
        fresh = ResultCache(cache_dir=shared)   # empty memory tier
        _, provenance = run_cell_cached("ex", "camad", _tiny_config(4),
                                        cache=fresh)
        assert provenance["cell_cache"] == "hit"
        assert fresh.stats.disk_hits >= 1

    def test_degraded_cell_never_cached(self):
        cache = ResultCache()
        cell, provenance = run_cell_cached(
            "ex", "ours", _tiny_config(4), cache=cache,
            budget=Budget(max_steps=1))
        assert cell.row()["degraded"] is True
        assert provenance["cell_cache"] == "miss"
        assert cache.get_cell(provenance["cache_key"]) is None

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        writer = ResultCache(cache_dir=tmp_path)
        writer.put("aa" + "0" * 62, {"kind": "cell"})
        entry = writer._disk_path("aa" + "0" * 62)
        entry.write_text("{ not json")
        reader = ResultCache(cache_dir=tmp_path)
        assert reader.get("aa" + "0" * 62) is None
        assert reader.stats.misses == 1

    def test_wrong_key_disk_entry_is_a_miss(self, tmp_path):
        writer = ResultCache(cache_dir=tmp_path)
        writer.put("bb" + "0" * 62, {"kind": "cell"})
        entry = writer._disk_path("bb" + "0" * 62)
        moved = entry.parent / ("cc" + "0" * 62 + ".json")
        moved.write_text(entry.read_text())
        reader = ResultCache(cache_dir=tmp_path)
        reader._disk_path = lambda key: moved  # type: ignore[method-assign]
        assert reader.get("cc" + "0" * 62) is None


class TestMemoryLru:
    def test_cap_evicts_the_least_recently_used(self):
        cache = ResultCache(memory_cap=2)
        for key in ("k1", "k2", "k3"):
            cache.put(key, {"kind": "cell", "id": key})
        assert len(cache) == 2 and cache.evictions == 1
        assert cache.get("k1") is None  # no disk tier: evicted == gone
        assert cache.get("k3")["id"] == "k3"

    def test_get_refreshes_recency(self):
        cache = ResultCache(memory_cap=2)
        cache.put("old", {"kind": "cell"})
        cache.put("young", {"kind": "cell"})
        assert cache.get("old") is not None  # touch: old is now MRU
        cache.put("newest", {"kind": "cell"})
        assert cache.get("old") is not None
        assert cache.get("young") is None

    def test_zero_cap_means_unbounded(self):
        cache = ResultCache(memory_cap=0)
        for n in range(2000):
            cache.put(f"k{n}", {"kind": "cell"})
        assert len(cache) == 2000 and cache.evictions == 0

    def test_evicted_entry_is_still_a_disk_hit(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path, memory_cap=1)
        cache.put("aa" + "0" * 62, {"kind": "cell", "id": "first"})
        cache.put("bb" + "0" * 62, {"kind": "cell", "id": "second"})
        assert cache.evictions == 1
        payload = cache.get("aa" + "0" * 62)
        assert payload is not None and payload["id"] == "first"
        assert cache.stats.disk_hits == 1  # served by the durable tier
