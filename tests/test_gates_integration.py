"""End-to-end equivalence: DFG interpreter == RTL sim == gate netlist.

This is the strongest correctness statement in the repository: for
every benchmark and flow, the synthesised design expanded to gates and
driven cycle-by-cycle from its own control table computes exactly the
behavioural result.
"""

import random

import pytest

from repro.bench import load
from repro.etpn import default_design
from repro.gates import CompiledCircuit, expand_to_gates
from repro.gates.drive import run_functional
from repro.rtl import (build_control_table, evaluate_dfg, generate_rtl)
from repro.synth import run_camad, run_ours


def check_design(design, bits=4, rounds=5, seed=11):
    rtl = generate_rtl(design, bits)
    table = build_control_table(design, rtl)
    circuit = CompiledCircuit(expand_to_gates(rtl))
    rng = random.Random(seed)
    for _ in range(rounds):
        inputs = {v.name: rng.randrange(1 << bits)
                  for v in design.dfg.inputs()}
        expected = evaluate_dfg(design.dfg, inputs, bits)
        got = run_functional(design, rtl, table, circuit, inputs)
        for out_port, value in got.outputs.items():
            var = out_port.removeprefix("out_")
            assert value == expected[var], \
                f"{design.dfg.name}/{design.label}: {var}"
        for cond_port, value in got.conditions.items():
            var = cond_port.removeprefix("cond_")
            assert value == expected[var]


class TestGateLevelEquivalence:
    @pytest.mark.parametrize("name", ["ex", "dct", "diffeq", "paulin",
                                      "tseng"])
    def test_default_designs(self, name):
        check_design(default_design(load(name)))

    @pytest.mark.parametrize("name", ["ex", "dct", "diffeq"])
    def test_ours_designs(self, name):
        check_design(run_ours(load(name)).design)

    @pytest.mark.parametrize("name", ["ex", "diffeq"])
    def test_camad_designs(self, name):
        check_design(run_camad(load(name)).design)

    def test_8bit(self):
        check_design(run_ours(load("ex")).design, bits=8, rounds=3)


class TestNetlistSizes:
    def test_multiplier_dominates(self):
        """16-bit netlists are much larger than 4-bit ones (array
        multipliers grow quadratically)."""
        design = default_design(load("ex"))
        small = expand_to_gates(generate_rtl(design, 4))
        large = expand_to_gates(generate_rtl(design, 16))
        assert len(large) > 6 * len(small)

    def test_dff_count_matches_registers(self):
        design = default_design(load("ex"))
        bits = 8
        net = expand_to_gates(generate_rtl(design, bits))
        assert (net.stats()["dffs"]
                == design.binding.register_count() * bits)
