"""Tests for certificate-driven width narrowing of the cost model."""

from __future__ import annotations

import pytest

from repro.analysis.dataflow import analyze_dataflow
from repro.bench import load
from repro.cost import CostModel, narrow_design
from repro.cost.narrow import _node_width, proved_widths
from repro.dfg import DFGBuilder
from repro.etpn import default_design
from repro.etpn.datapath import NodeKind


def small_design():
    b = DFGBuilder("narrowme")
    b.inputs("a", "b")
    b.op("N1", "+", "t", "a", "b")
    b.op("N2", "*", "out", "t", "t")
    b.outputs("out")
    return default_design(b.build())


class TestProvedWidths:
    def test_widths_clamped_to_certificate_bits(self):
        design = small_design()
        cert = analyze_dataflow(design.dfg, 8)
        module_width, register_width = proved_widths(design, cert)
        assert module_width and register_width
        assert all(1 <= w <= 8 for w in module_width.values())
        assert all(1 <= w <= 8 for w in register_width.values())

    def test_assumptions_shrink_module_widths(self):
        design = small_design()
        wide, _ = proved_widths(design, analyze_dataflow(design.dfg, 16))
        tight, _ = proved_widths(
            design, analyze_dataflow(design.dfg, 16,
                                     assumptions={"a": (0, 3),
                                                  "b": (0, 3)}))
        assert sum(tight.values()) < sum(wide.values())

    def test_module_width_covers_every_bound_op(self):
        # A module shared by several ops must carry the widest of them.
        design = small_design()
        cert = analyze_dataflow(design.dfg, 8)
        module_width, _ = proved_widths(design, cert)
        for module, ops in design.binding.modules().items():
            for op_id in ops:
                if op_id in cert.op_facts:
                    assert module_width[module] >= \
                        min(8, cert.op_width(op_id))


class TestNodeWidth:
    def test_const_and_cond_nodes(self):
        design = small_design()
        cert = analyze_dataflow(design.dfg, 8)
        mw, rw = proved_widths(design, cert)
        dp = design.datapath
        for node_id, node in dp.nodes.items():
            w = _node_width(dp, node_id, cert, mw, rw)
            if node.kind == NodeKind.COND:
                assert w == 1
            elif node.kind == NodeKind.CONST:
                assert w == max(1, int(node.value or 0).bit_length())
            else:
                assert 1 <= w <= 8


class TestNarrowDesign:
    def test_applied_with_assumptions_saves_area(self):
        design = small_design()
        report = narrow_design(design, 16,
                               assumptions={"a": (0, 15), "b": (0, 15)})
        assert report.applied and report.equivalence_valid
        assert report.reason == ""
        assert report.narrowed.total_mm2 < report.baseline.total_mm2
        assert report.area_delta_mm2 > 0
        assert 0 < report.area_delta_pct < 100

    def test_baseline_matches_cost_model(self):
        design = small_design()
        report = narrow_design(design, 16)
        expected = CostModel(bits=16).hardware(design.datapath)
        assert report.baseline.total_mm2 == expected.total_mm2

    def test_precomputed_certificate_reused(self):
        design = small_design()
        cert = analyze_dataflow(design.dfg, 16,
                                assumptions={"a": (0, 7), "b": (0, 7)})
        report = narrow_design(design, 16, cert=cert)
        assert report.certificate is cert
        assert report.applied

    def test_bits_mismatch_raises(self):
        design = small_design()
        cert = analyze_dataflow(design.dfg, 8)
        with pytest.raises(ValueError, match="certificate width"):
            narrow_design(design, 16, cert=cert)

    def test_benchmark_narrowing_at_16_bits(self):
        from repro.etpn.from_dfg import default_design as dd
        design = dd(load("tseng"))
        report = narrow_design(design, 16,
                               assumptions={v.name: (0, 255)
                                            for v in design.dfg.inputs()})
        assert report.applied
        assert report.area_delta_mm2 > 0

    def test_to_dict_and_summary(self):
        design = small_design()
        report = narrow_design(design, 16,
                               assumptions={"a": (0, 15), "b": (0, 15)})
        data = report.to_dict()
        assert data["applied"] is True
        assert data["name"] == "narrowme" and data["bits"] == 16
        assert data["narrowed_mm2"] < data["baseline_mm2"]
        assert round(data["baseline_mm2"] - data["narrowed_mm2"], 6) == \
            data["area_delta_mm2"]
        assert "narrowme@16b" in report.summary()
        assert "->" in report.summary()

    def test_refused_summary_mentions_reason(self, monkeypatch):
        import repro.analysis.equivalence as eq

        class FakeCert:
            valid = False
            divergences = ["boom"]

        monkeypatch.setattr(eq, "certify",
                            lambda dfg, steps, binding: FakeCert())
        report = narrow_design(small_design(), 8)
        assert "refused" in report.summary()
        assert report.to_dict()["applied"] is False
        assert report.to_dict()["area_delta_mm2"] == 0.0
