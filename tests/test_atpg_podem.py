"""Unit tests for time-frame unrolling and PODEM."""

import pytest

from repro.atpg import Fault, FaultSimulator, PodemEngine, unroll
from repro.atpg.unroll import OP_BUF, OP_CONST0, OP_PI
from repro.gates import CompiledCircuit, GateNetlist, GateType


def comb_net():
    """o = (a & b) | ~c."""
    net = GateNetlist("comb")
    a = net.add_input("a")
    b = net.add_input("b")
    c = net.add_input("c")
    g1 = net.add(GateType.AND, (a, b))
    g2 = net.add(GateType.NOT, (c,))
    g3 = net.add(GateType.OR, (g1, g2))
    net.set_output("o", g3)
    return net, (a, b, c, g1, g2, g3)


def seq_net():
    """q' = q ^ a; o = q & b (fault on q needs >= 2 frames)."""
    net = GateNetlist("seq")
    q = net.add_dff("q")
    a = net.add_input("a")
    b = net.add_input("b")
    d = net.add(GateType.XOR, (q, a))
    net.connect_dff(q, d)
    o = net.add(GateType.AND, (q, b))
    net.set_output("o", o)
    return net, q


class TestUnroll:
    def test_frame_count_and_sites(self):
        net, gids = comb_net()
        model = unroll(net, 3)
        for gid in gids:
            assert len(model.site_uids[gid]) == 3

    def test_dff_frame0_is_reset(self):
        net, q = seq_net()
        model = unroll(net, 2)
        frame0_q = model.site_uids[q][0]
        assert model.ops[frame0_q] == OP_BUF
        reset = model.fanins[frame0_q][0]
        assert model.ops[reset] == OP_CONST0

    def test_dff_chains_frames(self):
        net, q = seq_net()
        model = unroll(net, 2)
        frame1_q = model.site_uids[q][1]
        # Frame 1's q reads frame 0's D logic (the XOR), not a const.
        assert model.ops[model.fanins[frame1_q][0]] not in (OP_CONST0, OP_PI)

    def test_pis_per_frame(self):
        net, _ = seq_net()
        model = unroll(net, 3)
        assert len(model.pi_names) == 2 * 3
        assert len(model.po_names) == 3

    def test_depth_monotone(self):
        net, gids = comb_net()
        model = unroll(net, 1)
        assert all(model.depth[model.fanins[u][0]] < model.depth[u]
                   for u in range(model.size) if model.fanins[u])


class TestPodemCombinational:
    @pytest.mark.parametrize("stuck", [0, 1])
    def test_and_gate_fault(self, stuck):
        net, (a, b, c, g1, g2, g3) = comb_net()
        engine = PodemEngine(unroll(net, 1))
        result = engine.generate(Fault(g1, stuck))
        assert result.success
        # Verify with the fault simulator.
        sim = FaultSimulator(CompiledCircuit(net))
        vector = {name: result.assignment.get((0, name), 0)
                  for name in ("a", "b", "c")}
        assert Fault(g1, stuck) in sim.run_sequence([vector],
                                                    [Fault(g1, stuck)])

    def test_untestable_fault_proven(self):
        # o = a | ~a is constantly 1: the OR output sa1 is untestable.
        net = GateNetlist("redundant")
        a = net.add_input("a")
        n = net.add(GateType.NOT, (a,))
        o = net.add(GateType.OR, (a, n))
        net.set_output("o", o)
        engine = PodemEngine(unroll(net, 1))
        result = engine.generate(Fault(o, 1))
        assert not result.success
        assert not result.aborted  # proven, not given up

    def test_effort_counted(self):
        net, (a, b, c, g1, g2, g3) = comb_net()
        engine = PodemEngine(unroll(net, 1))
        result = engine.generate(Fault(g1, 0))
        assert result.stats.implications > 0
        assert result.stats.effort >= result.stats.implications


class TestPodemSequential:
    def test_needs_two_frames(self):
        net, q = seq_net()
        assert not PodemEngine(unroll(net, 1)).generate(Fault(q, 0)).success
        result = PodemEngine(unroll(net, 2)).generate(Fault(q, 0))
        assert result.success

    def test_sequential_test_validates(self):
        net, q = seq_net()
        result = PodemEngine(unroll(net, 2)).generate(Fault(q, 0))
        sim = FaultSimulator(CompiledCircuit(net))
        sequence = [
            {name: result.assignment.get((frame, name), 0)
             for name in ("a", "b")}
            for frame in range(2)]
        assert Fault(q, 0) in sim.run_sequence(sequence, [Fault(q, 0)])

    def test_backtrack_limit_aborts(self):
        net, q = seq_net()
        engine = PodemEngine(unroll(net, 2), max_backtracks=0,
                             max_implications=1)
        result = engine.generate(Fault(q, 0))
        assert not result.success
