"""Tests for the two-tier dispatch and the MHP structural fallback."""

from __future__ import annotations

from repro.analysis import (MHPAnalysis, Tier, TieredAnalysis, analyze_design,
                            cross_check)
from repro.analysis.races import ConcurrencyAnalysis
from repro.bench import load
from repro.etpn.from_dfg import default_design
from repro.petri.net import PetriNet
from repro.runtime.budget import Budget


def fork_join_net(length: int = 5) -> PetriNet:
    """Two parallel chains of ``length`` places between fork and join."""
    net = PetriNet("fj")
    net.add_place("S0")
    net.add_place("J")
    for i in range(length):
        net.add_place(f"A{i}")
        net.add_place(f"B{i}")
    net.add_transition("fork", ["S0"], ["A0", "B0"])
    for i in range(length - 1):
        net.add_transition(f"ta{i}", [f"A{i}"], [f"A{i + 1}"])
        net.add_transition(f"tb{i}", [f"B{i}"], [f"B{i + 1}"])
    net.add_transition("join", [f"A{length - 1}", f"B{length - 1}"], ["J"])
    net.set_initial("S0")
    net.set_final("J")
    return net


def stuck_net() -> PetriNet:
    net = PetriNet("stuck")
    for p in ("S0", "A", "B", "J"):
        net.add_place(p)
    net.add_transition("ta", ["S0"], ["A"])
    net.add_transition("tb", ["S0"], ["B"])
    net.add_transition("join", ["A", "B"], ["J"])
    net.set_initial("S0")
    net.set_final("J")
    return net


class TestTieredAnalysis:
    def test_structural_tier_decides_without_bfs(self):
        tiered = TieredAnalysis(fork_join_net())
        assert tiered.safe.value is True
        assert tiered.safe.tier is Tier.STRUCTURAL
        assert tiered.deadlock_free.value is True
        assert tiered.deadlock_free.tier is Tier.STRUCTURAL
        assert tiered.graph is None, "fast path must not enumerate"

    def test_forced_enumerative_tier(self):
        tiered = TieredAnalysis(fork_join_net(),
                                force_tier=Tier.ENUMERATIVE)
        assert tiered.safe.value is True
        assert tiered.safe.tier is Tier.ENUMERATIVE
        assert tiered.graph is not None

    def test_forced_structural_tier_never_builds_graph(self):
        tiered = TieredAnalysis(stuck_net(), force_tier=Tier.STRUCTURAL)
        # Structure cannot decide this deadlock; enumeration is off.
        assert tiered.deadlock_free.value is None
        assert tiered.deadlock_free.tier is Tier.INCONCLUSIVE
        assert tiered.graph is None

    def test_enumerative_fallback_decides_stuck_net(self):
        tiered = TieredAnalysis(stuck_net())
        assert tiered.deadlock_free.value is False
        assert tiered.deadlock_free.tier is Tier.ENUMERATIVE

    def test_budget_truncation_is_inconclusive_not_wrong(self):
        tiered = TieredAnalysis(stuck_net(), budget=Budget(max_steps=1))
        assert tiered.deadlock_free.value is None
        assert tiered.deadlock_free.tier is Tier.INCONCLUSIVE
        assert "budget" in tiered.deadlock_free.detail

    def test_bound_overflow_is_inconclusive(self):
        tiered = TieredAnalysis(stuck_net(), max_markings=2)
        assert tiered.deadlock_free.value is None
        assert tiered.deadlock_free.tier is Tier.INCONCLUSIVE

    def test_reuses_supplied_graph(self):
        from repro.analysis import ReachabilityGraph
        net = stuck_net()
        graph = ReachabilityGraph(net)
        tiered = TieredAnalysis(net, graph=graph)
        assert tiered.graph is graph


class TestCrossCheck:
    def test_benchmarks_agree(self):
        design = default_design(load("ex"))
        assert cross_check(design.control_net) == []

    def test_undecidable_structures_agree_vacuously(self):
        # Structure is inconclusive about the stuck net's deadlock;
        # inconclusive imposes no constraint, so no mismatch.
        assert cross_check(stuck_net()) == []

    def test_fork_join_agrees(self):
        assert cross_check(fork_join_net()) == []


class TestMHPStructuralFallback:
    def test_budget_truncation_falls_back_to_structural(self):
        """Regression: a drained budget used to leave a truncated (and
        unsoundly incomplete) MHP relation; now it degrades to the
        sound structural over-approximation."""
        net = fork_join_net(length=8)
        exact = MHPAnalysis(net)
        assert exact.tier == "enumerative" and not exact.approximate

        truncated = MHPAnalysis(net, budget=Budget(max_steps=5))
        assert truncated.tier == "structural"
        assert truncated.approximate
        assert truncated.certificate is not None
        # Sound over-approximation: nothing the exact relation contains
        # may be missing.
        assert exact.place_pairs <= truncated.place_pairs
        assert exact.enabled_pairs <= truncated.enabled_pairs
        assert exact.concurrent_pairs <= truncated.concurrent_pairs
        assert exact.marked_places <= truncated.marked_places

    def test_structural_tier_is_exact_on_fork_join(self):
        # Unit invariants prove every same-branch pair exclusive, so
        # the over-approximation collapses to the exact relation here.
        net = fork_join_net(length=4)
        exact = MHPAnalysis(net)
        structural = MHPAnalysis(net, tier="structural")
        assert structural.graph is None
        assert structural.place_pairs == exact.place_pairs
        assert structural.concurrent_pairs == exact.concurrent_pairs

    def test_explicit_enumerative_tier_keeps_legacy_truncation(self):
        net = fork_join_net(length=8)
        legacy = MHPAnalysis(net, budget=Budget(max_steps=5),
                             tier="enumerative")
        assert legacy.tier == "enumerative"
        assert legacy.approximate  # truncated prefix, flagged as such
        assert legacy.graph is not None and legacy.graph.truncated

    def test_rejects_unknown_tier(self):
        import pytest
        with pytest.raises(ValueError):
            MHPAnalysis(fork_join_net(), tier="psychic")

    def test_concurrency_analysis_threads_tier(self):
        design = default_design(load("ex"))
        analysis = ConcurrencyAnalysis.of_design(design, tier="structural")
        assert analysis.mhp.tier == "structural"
        assert analysis.mhp.graph is None
        # The chain's unit invariant proves all steps exclusive: the
        # over-approximation stays race-free, like the exact tier.
        assert analysis.races() == []


class TestAnalyzeDesignTiers:
    def test_structural_tier_reports_no_markings(self):
        result = analyze_design(default_design(load("ex")),
                                tier="structural")
        assert result.markings == 0
        assert result.safe is not None and result.safe.value is True
        assert result.safe.tier is Tier.STRUCTURAL
        assert result.deadlock_free.value is True

    def test_auto_tier_skips_bfs_when_structure_decides(self):
        result = analyze_design(default_design(load("ex")))
        assert result.safe.tier is Tier.STRUCTURAL
        assert result.deadlock_free.tier is Tier.STRUCTURAL
        assert result.structural is not None

    def test_enumerative_tier_still_works(self):
        result = analyze_design(default_design(load("ex")),
                                tier="enumerative")
        assert result.safe.tier is Tier.ENUMERATIVE
        assert result.safe.value is True
        assert result.markings > 0

    def test_rejects_unknown_tier(self):
        import pytest
        with pytest.raises(ValueError):
            analyze_design(default_design(load("ex")), tier="psychic")

    def test_reach_graph_exposes_counters(self):
        from repro.analysis import ReachabilityGraph
        graph = ReachabilityGraph(default_design(load("ex")).control_net)
        assert graph.marking_count == len(graph.markings) > 0
        assert graph.edge_count == len(graph.edges) > 0
        assert graph.elapsed_seconds >= 0.0
