"""Unit tests for reachability trees and critical-path extraction."""

import pytest

from repro.dfg import DFGBuilder
from repro.errors import PetriNetError
from repro.petri import (FINAL_PLACE, Guard, PetriNet, ReachabilityTree,
                         control_net_for_design, control_net_from_schedule,
                         critical_path, execution_time)


class TestReachability:
    def test_linear_chain(self):
        net = control_net_from_schedule("lin", 4)
        tree = ReachabilityTree(net)
        assert frozenset({FINAL_PLACE}) in tree.reachable_markings()
        assert len(tree.reachable_markings()) == 5

    def test_loop_terminates_via_duplicates(self):
        net = control_net_from_schedule("loop", 3, loop_condition="c")
        tree = ReachabilityTree(net)
        duplicates = [n for n in tree.nodes if n.duplicate]
        assert duplicates, "the back edge must create a duplicate node"

    def test_fork_join(self):
        net = PetriNet("forkjoin")
        for pid in ("P0", "A", "B", "P3"):
            net.add_place(pid, delay=1)
        net.add_place(FINAL_PLACE, delay=0)
        net.add_transition("fork", ["P0"], ["A", "B"])
        net.add_transition("join", ["A", "B"], ["P3"])
        net.add_transition("end", ["P3"], [FINAL_PLACE])
        net.set_initial("P0")
        net.set_final(FINAL_PLACE)
        tree = ReachabilityTree(net)
        assert frozenset({"A", "B"}) in tree.reachable_markings()
        assert frozenset({FINAL_PLACE}) in tree.reachable_markings()

    def test_node_budget(self):
        net = control_net_from_schedule("big", 50)
        with pytest.raises(PetriNetError):
            ReachabilityTree(net, max_nodes=10)


class TestCriticalPath:
    def test_linear_length(self):
        net = control_net_from_schedule("lin", 4)
        assert execution_time(net) == 4

    def test_single_step(self):
        net = control_net_from_schedule("one", 1)
        assert execution_time(net) == 1

    def test_loop_counts_one_iteration(self):
        straight = execution_time(control_net_from_schedule("s", 5))
        looped = execution_time(
            control_net_from_schedule("l", 5, loop_condition="c"))
        # E is the per-iteration path to the final place: identical to the
        # straight-line chain of the same length.
        assert looped == straight

    def test_delta_e_consistency(self):
        # Lengthening a looped schedule by one step raises E by one.
        e3 = execution_time(control_net_from_schedule("a", 3, "c"))
        e4 = execution_time(control_net_from_schedule("b", 4, "c"))
        assert e4 - e3 == 1

    def test_places_sequence(self):
        net = control_net_from_schedule("lin", 3)
        cp = critical_path(net)
        assert cp.places == ("S0", "S1", "S2")
        assert cp.length == 3

    def test_zero_steps_rejected(self):
        with pytest.raises(PetriNetError):
            control_net_from_schedule("bad", 0)

    def test_control_net_for_design(self):
        b = DFGBuilder("d")
        b.inputs("a", "b")
        b.op("N1", "+", "x", "a", "b")
        b.op("N2", "*", "y", "x", "b")
        dfg = b.build()
        net = control_net_for_design(dfg, {"N1": 0, "N2": 1})
        assert execution_time(net) == 2
        assert net.places["S0"].label == "N1"
        assert net.places["S1"].label == "N2"

    def test_control_net_for_loop_design(self, loop_dfg):
        net = control_net_for_design(loop_dfg, {"N1": 0, "N2": 1})
        assert "t_loop" in net.transitions
        assert net.transitions["t_loop"].guard == Guard("c")
        assert net.transitions["t_exit"].guard == Guard("c", negated=True)


class TestSafeness:
    def test_linear_net_is_safe(self):
        net = control_net_from_schedule("lin", 4)
        tree = ReachabilityTree(net)
        assert tree.is_safe()
        assert tree.unsafe_firings == []

    def test_looping_net_is_safe(self):
        net = control_net_from_schedule("loop", 3, loop_condition="c")
        assert ReachabilityTree(net).is_safe()

    def test_unsafe_firing_detected_and_skipped(self):
        net = PetriNet("unsafe")
        net.add_place("P0", delay=1)
        net.add_place("A", delay=1)
        net.add_place("B", delay=1)
        net.add_place(FINAL_PLACE, delay=0)
        net.add_transition("t", ["P0"], ["A"])
        net.add_transition("u", ["A", "B"], [FINAL_PLACE])
        net.set_initial("P0", "A")
        net.set_final(FINAL_PLACE)
        tree = ReachabilityTree(net)
        assert not tree.is_safe()
        assert (frozenset({"P0", "A"}), "t", "A") in tree.unsafe_firings
        # The unsafe firing is recorded but not taken: with t skipped
        # and u disabled, the tree is just its root.
        assert len(tree.nodes) == 1

    def test_unsafe_net_reported_by_net007(self):
        from repro.lint import lint_petri
        net = PetriNet("unsafe2")
        net.add_place("P0", delay=1)
        net.add_place("A", delay=1)
        net.add_transition("t", ["P0"], ["A"])
        net.set_initial("P0", "A")
        report = lint_petri(net)
        assert "NET007" in report.codes()
        [finding] = [d for d in report if d.code == "NET007"]
        assert finding.severity.value == "warning"
        assert finding.location == "t"

    def test_safe_control_nets_pass_net007(self):
        from repro.lint import lint_petri
        net = control_net_from_schedule("lin", 5)
        assert "NET007" not in lint_petri(net).codes()
