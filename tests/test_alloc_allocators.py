"""Unit tests for left-edge, modified left-edge and module binders."""


from repro.alloc import (connectivity_left_edge, connectivity_module_binding,
                         left_edge, min_module_binding)
from repro.alloc import testability_left_edge as modified_left_edge
from repro.dfg import DFGBuilder, variable_lifetimes
from repro.dfg.lifetime import Lifetime


def lts(*triples):
    return {name: Lifetime(name, birth, death)
            for name, birth, death in triples}


class TestLeftEdge:
    def test_disjoint_share(self):
        result = left_edge(lts(("a", 0, 1), ("b", 1, 2)))
        assert result["a"] == result["b"]

    def test_overlapping_split(self):
        result = left_edge(lts(("a", 0, 2), ("b", 1, 3)))
        assert result["a"] != result["b"]

    def test_minimum_registers(self):
        # Three pairwise-overlapping at peak -> 3 registers; staircase
        # reuse afterwards.
        result = left_edge(lts(("a", 0, 2), ("b", 0, 3), ("c", 0, 4),
                               ("d", 2, 5), ("e", 3, 6)))
        assert len(set(result.values())) == 3

    def test_empty(self):
        assert left_edge({}) == {}

    def test_deterministic(self):
        intervals = lts(("a", 0, 2), ("b", 0, 3), ("c", 2, 4))
        assert left_edge(intervals) == left_edge(intervals)


class TestTestabilityLeftEdge:
    def test_same_register_count_as_plain(self, chain_dfg):
        steps = {"N1": 0, "N2": 1, "N3": 2}
        lifetimes = variable_lifetimes(chain_dfg, steps)
        plain = left_edge(lifetimes)
        modified = modified_left_edge(chain_dfg, lifetimes)
        assert len(set(modified.values())) == len(set(plain.values()))

    def test_mixes_input_and_later_variables(self, chain_dfg):
        steps = {"N1": 0, "N2": 1, "N3": 2}
        lifetimes = variable_lifetimes(chain_dfg, steps)
        modified = modified_left_edge(chain_dfg, lifetimes)
        # Some input variable must share with a non-input (the groups
        # mix sides by construction: inputs die early, values born late).
        groups = {}
        for var, reg in modified.items():
            groups.setdefault(reg, []).append(var)
        mixed = any(
            any(chain_dfg.variable(v).is_input for v in group)
            and any(not chain_dfg.variable(v).is_input for v in group)
            for group in groups.values() if len(group) > 1)
        assert mixed


class TestModuleBinding:
    def test_min_binding_separates_same_step(self, diamond_dfg):
        steps = {"N1": 0, "N2": 0, "N3": 1}
        binding = min_module_binding(diamond_dfg, steps)
        assert binding["N1"] != binding["N2"]

    def test_min_binding_shares_across_steps(self, diamond_dfg):
        steps = {"N1": 0, "N2": 1, "N3": 2}
        binding = min_module_binding(diamond_dfg, steps)
        assert binding["N1"] == binding["N2"]

    def test_classes_never_mix(self, chain_dfg):
        steps = {"N1": 0, "N2": 1, "N3": 2}
        binding = min_module_binding(chain_dfg, steps)
        assert binding["N1"].startswith("MUL")
        assert binding["N2"].startswith("ALU")
        assert binding["N2"] == binding["N3"]

    def test_connectivity_prefers_shared_variables(self):
        b = DFGBuilder("share")
        b.inputs("a", "b", "c", "d")
        b.op("N1", "+", "x", "a", "b")   # step 0
        b.op("N2", "+", "y", "c", "d")   # step 0 (forces 2 ALUs)
        b.op("N3", "+", "z", "x", "b")   # step 1, shares a/b with N1
        dfg = b.build()
        steps = {"N1": 0, "N2": 0, "N3": 1}
        binding = connectivity_module_binding(dfg, steps)
        assert binding["N3"] == binding["N1"]

    def test_connectivity_same_unit_count(self, diamond_dfg):
        steps = {"N1": 0, "N2": 0, "N3": 1}
        a = min_module_binding(diamond_dfg, steps)
        b = connectivity_module_binding(diamond_dfg, steps)
        assert len(set(a.values())) == len(set(b.values()))


class TestConnectivityRegisterAllocation:
    def test_prefers_shared_connections(self, multidef_dfg):
        steps = {"N1": 0, "N2": 1}
        lifetimes = variable_lifetimes(multidef_dfg, steps)
        module_of = min_module_binding(multidef_dfg, steps)
        result = connectivity_left_edge(multidef_dfg, lifetimes, module_of)
        # Same register count as plain left-edge.
        assert (len(set(result.values()))
                == len(set(left_edge(lifetimes).values())))
