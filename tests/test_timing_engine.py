"""Unit tests for the static timing analysis engine.

Hand-built netlists with arrivals computable by eye: launch/capture
semantics, slack arithmetic, false-path pruning, the incremental
ConeCache, budget/chaos degradation and the blocked-analysis paths.
"""

import json

import pytest

from repro.analysis.timing import (ConeCache, DEFAULT_TABLE, DelayTable,
                                   analyze_timing, default_period,
                                   merged_module_fits, module_depth)
from repro.bench import load
from repro.dfg.ops import OpKind
from repro.etpn.from_dfg import default_design
from repro.gates import GateNetlist, GateType
from repro.gates.netlist import Gate
from repro.runtime.budget import Budget
from repro.runtime.chaos import ACTION_RAISE, Injection

T = DEFAULT_TABLE

# Looser than the library-implied default period at 4 bits (~79), so
# report.ok is decided by slack alone, never by library disagreements.
PERIOD = 200.0


def simple_net():
    """o = XOR(AND(a, b), a); q captures the same signal."""
    net = GateNetlist("simple")
    a = net.add_input("a")
    b = net.add_input("b")
    g1 = net.add(GateType.AND, (a, b))
    g2 = net.add(GateType.XOR, (g1, a))
    net.set_output("o", g2)
    q = net.add_dff("q")
    net.connect_dff(q, g2)
    return net


class TestArrivals:
    def test_output_arrival_and_slack(self):
        report = analyze_timing(simple_net(), bits=4, period=PERIOD)
        out = next(e for e in report.endpoints if e.kind == "output")
        assert out.arrival == pytest.approx(T.and_ + T.xor)
        assert out.required == PERIOD
        assert out.slack == pytest.approx(PERIOD - (T.and_ + T.xor))
        assert out.levels == 2
        assert report.ok

    def test_dff_capture_subtracts_setup(self):
        report = analyze_timing(simple_net(), bits=4, period=PERIOD)
        dff = next(e for e in report.endpoints if e.kind == "dff")
        assert dff.required == pytest.approx(PERIOD - T.setup)
        assert dff.arrival == pytest.approx(T.and_ + T.xor)

    def test_dff_launch_adds_clk_q(self):
        net = GateNetlist("launch")
        a = net.add_input("a")
        q = net.add_dff("q")
        g = net.add(GateType.AND, (q, a))
        net.set_output("o", g)
        net.connect_dff(q, g)
        report = analyze_timing(net, bits=4, period=PERIOD)
        out = next(e for e in report.endpoints if e.kind == "output")
        assert out.arrival == pytest.approx(T.clk_q + T.and_)

    def test_default_period_derived(self):
        report = analyze_timing(simple_net(), bits=4)
        assert report.period_is_default
        assert report.period == default_period(4)

    def test_violations_wns_tns(self):
        period = 1.0  # tighter than any cone here
        report = analyze_timing(simple_net(), bits=4, period=period)
        assert report.violations()
        worst = report.violations()[0]
        assert report.wns() == pytest.approx(worst.slack)
        assert report.tns() == pytest.approx(
            sum(e.slack for e in report.violations()))
        assert not report.ok

    def test_deterministic_and_serialisable(self):
        first = analyze_timing(simple_net(), bits=4, period=PERIOD)
        second = analyze_timing(simple_net(), bits=4, period=PERIOD)
        assert first.to_dict() == second.to_dict()
        json.dumps(first.to_dict())


class TestFalsePaths:
    def test_constant_cone_is_unconstrained(self):
        net = GateNetlist("const")
        a = net.add_input("a")
        c0 = net.add(GateType.CONST0)
        g = net.add(GateType.AND, (c0, a))  # 0 for every valuation
        net.set_output("o", g)
        report = analyze_timing(net, bits=4, period=PERIOD)
        out = report.endpoints[0]
        assert out.arrival is None and out.slack is None
        assert out.pruned == 1
        assert report.unconstrained() == [out]
        assert report.ok  # dead logic is a warning, not a failure

    def test_pruned_gate_does_not_dominate_live_path(self):
        net = GateNetlist("mixed")
        a = net.add_input("a")
        b = net.add_input("b")
        c1 = net.add(GateType.CONST1)
        # Deep false path: OR(1, x) chains are constant at every stage.
        dead = net.add(GateType.OR, (c1, a))
        for _ in range(5):
            dead = net.add(GateType.OR, (dead, b))
        live = net.add(GateType.AND, (a, b))
        out = net.add(GateType.AND, (net.add(GateType.BUF, (dead,)), live))
        net.set_output("o", out)
        report = analyze_timing(net, bits=4, period=PERIOD)
        ep = report.endpoints[0]
        # Arrival comes from the live AND path only: the constant branch
        # contributes value, never time.
        assert ep.arrival == pytest.approx(2 * T.and_)
        assert ep.pruned >= 6

    def test_sequential_constants_prune_stuck_register(self):
        net = GateNetlist("seq")
        a = net.add_input("a")
        q = net.add_dff("q")
        c0 = net.add(GateType.CONST0)
        net.connect_dff(q, c0)  # q is reset-reachably stuck at 0
        g = net.add(GateType.AND, (q, a))
        net.set_output("o", g)
        plain = analyze_timing(net, bits=4, period=PERIOD)
        seeded = analyze_timing(net, bits=4, period=PERIOD,
                                sequential_constants=True)
        out_plain = next(e for e in plain.endpoints if e.kind == "output")
        out_seeded = next(e for e in seeded.endpoints if e.kind == "output")
        assert out_plain.arrival is not None
        assert out_seeded.arrival is None  # proved false by the seed


class TestConeCache:
    def test_hit_across_renumbered_netlists(self):
        cache = ConeCache()
        first = analyze_timing(simple_net(), bits=4, period=PERIOD,
                               cache=cache)
        # "o" and "q" share driver g2, so the second endpoint of even
        # the cold analysis is a legitimate same-run summary hit.
        assert first.cone_hits == 1
        # Same logic, different gate numbering: an unrelated NOT is
        # interleaved, shifting every gid.
        net = GateNetlist("renumbered")
        a = net.add_input("a")
        b = net.add_input("b")
        net.add(GateType.NOT, (a,))
        g1 = net.add(GateType.AND, (a, b))
        g2 = net.add(GateType.XOR, (g1, a))
        net.set_output("o", g2)
        q = net.add_dff("q")
        net.connect_dff(q, g2)
        second = analyze_timing(net, bits=4, period=PERIOD, cache=cache)
        assert second.cone_hits == second.cones_total
        assert all(e.cached for e in second.endpoints)
        assert [e.arrival for e in second.endpoints] \
            == [e.arrival for e in first.endpoints]

    def test_incremental_walk_stops_at_known_frontier(self):
        cache = ConeCache()
        analyze_timing(simple_net(), bits=4, period=PERIOD, cache=cache)
        # One new gate on top of the known cone: the miss re-evaluates
        # only the created suffix, not the whole fanin cone.
        net = simple_net()
        extra = net.add(GateType.NOT, (net.outputs["o"],))
        net.set_output("o2", extra)
        report = analyze_timing(net, bits=4, period=PERIOD, cache=cache)
        o2 = next(e for e in report.endpoints if e.name == "o2")
        assert not o2.cached and o2.cone_size == 1
        assert o2.arrival == pytest.approx(T.and_ + T.xor + T.not_)

    def test_bind_clears_on_config_change(self):
        cache = ConeCache()
        analyze_timing(simple_net(), bits=4, period=PERIOD, cache=cache)
        assert len(cache) > 0
        analyze_timing(simple_net(), bits=4, period=PERIOD, cache=cache,
                       table=DelayTable(and_=2.0))
        report = analyze_timing(simple_net(), bits=4, period=PERIOD,
                                cache=cache, table=DelayTable(and_=2.0))
        out = next(e for e in report.endpoints if e.kind == "output")
        assert out.arrival == pytest.approx(2.0 + T.xor)  # not stale


class TestDegradation:
    def test_budget_partial_is_tagged(self):
        report = analyze_timing(simple_net(), bits=4, period=PERIOD,
                                budget=Budget(max_steps=1))
        assert report.budget_exhausted
        assert any(e.skip_reason == "budget_exhausted"
                   for e in report.skipped())
        assert not report.ok
        json.dumps(report.to_dict())

    def test_chaos_skips_one_endpoint(self, chaos):
        chaos(Injection("timing.cone_eval", ACTION_RAISE, at_visit=1))
        report = analyze_timing(simple_net(), bits=4, period=PERIOD)
        assert report.degraded
        assert len(report.skipped()) == 1
        assert "ChaosError" in report.skipped()[0].skip_reason
        survivors = [e for e in report.endpoints if e.analysed]
        assert survivors and all(e.slack is not None for e in survivors)

    def test_forged_cycle_blocks_analysis(self):
        net = simple_net()
        base = len(net.gates)
        net.gates.append(Gate(base, GateType.AND, (0, base + 1)))
        net.gates.append(Gate(base + 1, GateType.AND, (base, 1)))
        report = analyze_timing(net, bits=4, period=PERIOD)
        assert report.cycle
        assert not report.endpoints
        assert not report.ok

    def test_floating_dff_is_skipped_not_fatal(self):
        net = simple_net()
        net.add_dff("floating")
        report = analyze_timing(net, bits=4, period=PERIOD)
        assert report.degraded
        skipped = report.skipped()
        assert len(skipped) == 1 and "floating" in skipped[0].skip_reason
        assert any(e.analysed for e in report.endpoints)

    def test_broken_table_refuses_to_propagate(self):
        report = analyze_timing(simple_net(), bits=4,
                                table=DelayTable(and_=0.0))
        assert report.table_problems
        assert not report.endpoints
        assert not report.ok


class TestWorstPaths:
    def test_paths_sorted_and_consistent(self):
        report = analyze_timing(simple_net(), bits=4, period=PERIOD,
                                k_paths=4)
        assert report.paths
        slacks = [p.slack for p in report.paths]
        assert slacks == sorted(slacks)
        for path in report.paths:
            arrivals = [s.arrival for s in path.steps]
            assert arrivals == sorted(arrivals)
            ep = next(e for e in report.endpoints if e.name == path.endpoint)
            assert path.arrival == pytest.approx(ep.arrival)
            assert path.steps[-1].gid == ep.gid \
                or path.steps[-1].arrival == pytest.approx(ep.arrival)
            assert path.format()

    def test_k_zero_extracts_nothing(self):
        report = analyze_timing(simple_net(), bits=4, period=PERIOD,
                                k_paths=0)
        assert report.paths == []


class TestStructuralIds:
    def test_nids_parallel_to_gates(self):
        net = simple_net()
        assert len(net.nids) == len(net.gates)
        twin = simple_net()
        assert twin.nids == net.nids  # hash-consing is process-global

    def test_dff_key_survives_connect(self):
        net = GateNetlist("dff")
        q = net.add_dff("q")
        before = net.nids[q]
        a = net.add_input("a")
        net.connect_dff(q, a)
        assert net.nids[q] == before  # key excludes the D fanin

    def test_scan_style_replacement_stays_analysable(self):
        # scan insertion swaps a DFF's Gate in place (same gid, new D);
        # construction-time ids must stay valid for that mutation.
        net = simple_net()
        q = net.dff_gids[0]
        mux = net.add(GateType.OR, (net.inputs["a"], net.inputs["b"]))
        net.gates[q] = Gate(q, GateType.DFF, (mux,), net.gates[q].name)
        assert len(net.nids) == len(net.gates)
        report = analyze_timing(net, bits=4, period=PERIOD)
        dff = next(e for e in report.endpoints if e.kind == "dff")
        assert dff.arrival == pytest.approx(T.or_)


class TestCostHook:
    def test_every_default_module_fits_default_period(self):
        design = default_design(load("ex"))
        for module in design.binding.modules():
            assert merged_module_fits(design, module, 8)

    def test_tight_period_rejects(self):
        design = default_design(load("ex"))
        module = next(iter(design.binding.modules()))
        assert not merged_module_fits(design, module, 8, period=1.0)

    def test_module_depth_grows_with_merging(self):
        single = module_depth(frozenset({OpKind.ADD}), 8)
        merged = module_depth(frozenset({OpKind.ADD, OpKind.SUB}), 8)
        assert 0.0 < single < merged
