"""Unit + property tests for the may-happen-in-parallel relation."""

import time
from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import MHPAnalysis
from repro.bench import load
from repro.etpn.from_dfg import default_design
from repro.petri import (FINAL_PLACE, Guard, PetriNet,
                         control_net_from_schedule, step_place)

from .test_analysis_reach_graph import fork_join_net


def guarded_fork_net() -> PetriNet:
    """A fork whose B branch re-runs under a guard.

    S0 forks into chains A0-A1 and B0-B1; after B1 a guarded choice
    either loops back to B0 or proceeds to the join.  The extra
    interleavings make e.g. {A0, B1} and {A1, B0} co-marked — pairs a
    linear control-step view cannot express.
    """
    net = PetriNet("guarded_fork")
    for pid in ("S0", "A0", "A1", "B0", "B1", "B2", "J"):
        net.add_place(pid, delay=1)
    net.add_place(FINAL_PLACE, delay=0)
    net.add_transition("fork", ["S0"], ["A0", "B0"])
    net.add_transition("tA", ["A0"], ["A1"])
    net.add_transition("tB", ["B0"], ["B1"])
    net.add_transition("redo", ["B1"], ["B0"], guard=Guard("c"))
    net.add_transition("done", ["B1"], ["B2"], guard=Guard("c", negated=True))
    net.add_transition("join", ["A1", "B2"], ["J"])
    net.add_transition("end", ["J"], [FINAL_PLACE])
    net.set_initial("S0")
    net.set_final(FINAL_PLACE)
    return net


class TestMHPOnBranchFreeNets:
    @settings(max_examples=40, deadline=None)
    @given(num_steps=st.integers(min_value=1, max_value=8),
           data=st.data())
    def test_linear_mhp_equals_same_step(self, num_steps, data):
        """On a branch-free control net, op-level MHP degenerates to
        exactly the same-control-step pairs of the linear schedule."""
        net = control_net_from_schedule("lin", num_steps)
        num_ops = data.draw(st.integers(min_value=1, max_value=10))
        steps = {f"N{i}": data.draw(st.integers(min_value=0,
                                                max_value=num_steps - 1),
                                    label=f"step of N{i}")
                 for i in range(num_ops)}
        placement = {op: step_place(step) for op, step in steps.items()}
        mhp = MHPAnalysis(net)
        expected = {frozenset((a, b))
                    for a, b in combinations(sorted(steps), 2)
                    if steps[a] == steps[b]}
        assert mhp.op_pairs(placement) == expected

    def test_linear_places_never_co_marked(self):
        mhp = MHPAnalysis(control_net_from_schedule("lin", 5))
        for i, j in combinations(range(5), 2):
            assert not mhp.places_parallel(step_place(i), step_place(j))
        assert mhp.places_parallel(step_place(3), step_place(3))


class TestMHPOnForkingNets:
    def test_cross_branch_places_parallel(self):
        mhp = MHPAnalysis(fork_join_net(2))
        assert mhp.places_parallel("A0", "B0")
        assert mhp.places_parallel("A0", "B1")
        assert mhp.places_parallel("A1", "B0")
        assert not mhp.places_parallel("S0", "A0")
        assert not mhp.places_parallel("A0", "A1")

    def test_schedule_view_misses_the_guarded_race(self):
        """With a guard re-running branch B, ops in *different* nominal
        steps (A0 at depth 1, B1 at depth 2) may still run in parallel —
        the linear same-step view would never pair them."""
        mhp = MHPAnalysis(guarded_fork_net())
        steps = {"opA": 1, "opB": 2}  # schedule view: never the same step
        placement = {"opA": "A0", "opB": "B1"}
        same_step = {frozenset((a, b))
                     for a, b in combinations(sorted(steps), 2)
                     if steps[a] == steps[b]}
        assert same_step == set()
        assert mhp.op_pairs(placement) == {frozenset(("opA", "opB"))}
        # The guard also makes the loop-back visible: B0 after the redo
        # co-exists with A1, which a single pass would not produce.
        assert mhp.places_parallel("A1", "B0")

    def test_concurrent_vs_conflict_transitions(self):
        mhp = MHPAnalysis(guarded_fork_net())
        # tA and tB fire from disjoint inputs: true concurrency.
        assert mhp.transitions_parallel("tA", "tB")
        # redo and done compete for the token in B1: a choice.
        assert frozenset(("redo", "done")) in mhp.conflict_pairs()
        assert not mhp.transitions_parallel("redo", "done")
        assert not mhp.transitions_parallel("tA", "tA")

    def test_op_pairs_ignores_unknown_places(self):
        mhp = MHPAnalysis(fork_join_net(1))
        placement = {"x": "A0", "y": "NOWHERE"}
        assert mhp.op_pairs(placement) == set()


class TestMHPScale:
    def test_ewf_mhp_under_five_seconds(self):
        """Acceptance bound: MHP on the largest benchmark is fast."""
        design = default_design(load("ewf"))
        start = time.perf_counter()
        mhp = MHPAnalysis(design.control_net)
        elapsed = time.perf_counter() - start
        assert elapsed < 5.0
        assert len(mhp.graph) >= design.execution_time
