"""Unit tests for schedule-independent DFG analyses."""

import pytest

from repro.dfg import DFGBuilder
from repro.dfg.analysis import (alap_steps, asap_steps, critical_path_length,
                                critical_path_ops, mobility,
                                topological_order)
from repro.errors import DFGError


class TestTopologicalOrder:
    def test_chain(self, chain_dfg):
        assert topological_order(chain_dfg) == ["N1", "N2", "N3"]

    def test_diamond_respects_dependences(self, diamond_dfg):
        order = topological_order(diamond_dfg)
        assert order.index("N1") < order.index("N3")
        assert order.index("N2") < order.index("N3")

    def test_deterministic(self, diamond_dfg):
        assert topological_order(diamond_dfg) == topological_order(diamond_dfg)


class TestAsapAlap:
    def test_chain_asap(self, chain_dfg):
        assert asap_steps(chain_dfg) == {"N1": 0, "N2": 1, "N3": 2}

    def test_diamond_asap(self, diamond_dfg):
        asap = asap_steps(diamond_dfg)
        assert asap["N1"] == 0 and asap["N2"] == 0 and asap["N3"] == 1

    def test_chain_alap_equals_asap(self, chain_dfg):
        assert alap_steps(chain_dfg) == asap_steps(chain_dfg)

    def test_diamond_mobility(self, diamond_dfg):
        mob = mobility(diamond_dfg)
        assert mob == {"N1": 0, "N2": 0, "N3": 0}

    def test_mobility_with_slack(self):
        b = DFGBuilder("slack")
        b.inputs("a", "b", "c", "d", "e")
        b.op("N1", "*", "x", "a", "b")
        b.op("N2", "*", "y", "x", "c")
        b.op("N3", "+", "z", "d", "e")  # independent, mobile
        dfg = b.build()
        mob = mobility(dfg)
        assert mob["N1"] == 0 and mob["N2"] == 0
        assert mob["N3"] == 1

    def test_alap_with_extended_horizon(self, chain_dfg):
        alap = alap_steps(chain_dfg, horizon=5)
        assert alap == {"N1": 2, "N2": 3, "N3": 4}

    def test_alap_infeasible_horizon(self, chain_dfg):
        with pytest.raises(DFGError):
            alap_steps(chain_dfg, horizon=2)

    def test_multidef_serialised(self, multidef_dfg):
        asap = asap_steps(multidef_dfg)
        assert asap["N2"] == asap["N1"] + 1


class TestCriticalPath:
    def test_chain_length(self, chain_dfg):
        assert critical_path_length(chain_dfg) == 3

    def test_diamond_length(self, diamond_dfg):
        assert critical_path_length(diamond_dfg) == 2

    def test_chain_ops(self, chain_dfg):
        assert critical_path_ops(chain_dfg) == ["N1", "N2", "N3"]

    def test_custom_delays(self, chain_dfg):
        delays = {"N1": 2, "N2": 1, "N3": 1}
        assert critical_path_length(chain_dfg, delays) == 4
