"""Unit tests for CC/SC/CO/SO propagation."""


from repro.alloc import default_binding
from repro.etpn import DataPath, default_design
from repro.testability import analyze


class TestForwardPropagation:
    def test_primary_input_fully_controllable(self, chain_dfg):
        analysis = analyze(default_design(chain_dfg).datapath)
        node = analysis.node("PI_a")
        assert node.cc == 1.0 and node.sc == 0.0

    def test_register_adds_sequential_cost(self, chain_dfg):
        analysis = analyze(default_design(chain_dfg).datapath)
        # R_a is loaded straight from PI_a: CC=1, SC=1 at its output,
        # so the node-level (best input line) values are CC=1, SC=0.
        reg = analysis.node("R_a")
        assert reg.cc == 1.0 and reg.sc == 0.0
        # The module reading R_a sees the registered value.
        line = next(a for a in analysis.datapath.arcs
                    if a.src == "R_a" and a.dst == "M_N1")
        lt = analysis.line(line)
        assert lt.cc == 1.0 and lt.sc == 1.0

    def test_controllability_decays_along_chain(self, chain_dfg):
        analysis = analyze(default_design(chain_dfg).datapath)
        # Registers deeper in the chain are fed by longer justification
        # paths: worse combinational and sequential controllability.
        assert (analysis.node("R_x").c_score
                > analysis.node("R_z").c_score)

    def test_sequential_depth_grows_along_chain(self, chain_dfg):
        analysis = analyze(default_design(chain_dfg).datapath)
        r_x = analysis.node("R_x")
        r_z = analysis.node("R_z")
        assert r_z.sc > r_x.sc


class TestBackwardPropagation:
    def test_primary_output_fully_observable(self, chain_dfg):
        analysis = analyze(default_design(chain_dfg).datapath)
        node = analysis.node("PO_z")
        assert node.co == 1.0 and node.so == 0.0

    def test_observability_decays_towards_inputs(self, chain_dfg):
        analysis = analyze(default_design(chain_dfg).datapath)
        near_output = analysis.node("R_z")
        near_input = analysis.node("R_a")
        assert near_output.o_score > near_input.o_score

    def test_condition_counts_as_observable(self, loop_dfg):
        analysis = analyze(default_design(loop_dfg).datapath)
        # The comparison module drives a condition: observable output.
        module = analysis.node("M_N2")
        assert module.co > 0.0
        assert module.so == 0.0

    def test_unconnected_has_zero_observability(self, chain_dfg):
        analysis = analyze(default_design(chain_dfg).datapath)
        # PI observability flows back fine; sanity: every module has
        # *some* observability in this connected graph.
        for module in analysis.datapath.modules():
            assert analysis.node(module.node_id).co > 0.0


class TestLoopsAndFixpoint:
    def test_self_loop_converges(self, multidef_dfg):
        binding = default_binding(multidef_dfg).merge_modules("M_N1", "M_N2")
        dp = DataPath(multidef_dfg, binding)
        analysis = analyze(dp)  # must terminate
        node = analysis.node("M_N1")
        assert 0.0 < node.cc <= 1.0
        assert 0.0 < node.co <= 1.0

    def test_balance_example_shape(self, chain_dfg):
        """Nodes near PIs are C-dominant, nodes near POs are O-dominant."""
        analysis = analyze(default_design(chain_dfg).datapath)
        assert analysis.node("R_a").imbalance > 0
        assert analysis.node("R_z").imbalance < 0


class TestQuality:
    def test_design_quality_in_unit_range(self, chain_dfg):
        analysis = analyze(default_design(chain_dfg).datapath)
        assert 0.0 <= analysis.design_quality() <= 1.0

    def test_all_nodes_covers_everything(self, chain_dfg):
        analysis = analyze(default_design(chain_dfg).datapath)
        assert set(analysis.all_nodes()) == set(analysis.datapath.nodes)
