"""Unit and integration tests for Algorithm 1 and the baseline flows."""

import pytest

from repro.cost import CostModel
from repro.dfg import DFGBuilder
from repro.etpn import default_design
from repro.synth import (SynthesisParams, compatible_pairs, rank_candidates,
                         run_approach1, run_approach2, run_camad, run_flow,
                         run_ours, synthesize, top_k)
from repro.testability import analyze


@pytest.fixture
def bigger_dfg():
    """Eight ops, enough structure for several mergers."""
    b = DFGBuilder("bigger")
    b.inputs("a", "b", "c", "d", "e", "f")
    b.op("N1", "*", "p", "a", "b")
    b.op("N2", "*", "q", "c", "d")
    b.op("N3", "+", "r", "p", "e")
    b.op("N4", "+", "s", "q", "f")
    b.op("N5", "-", "t", "r", "a")
    b.op("N6", "-", "u", "s", "c")
    b.op("N7", "+", "v", "t", "u")
    b.outputs("v")
    return b.build()


class TestCandidates:
    def test_compatible_pairs_respect_classes(self, chain_dfg):
        design = default_design(chain_dfg)
        pairs = compatible_pairs(design)
        module_pairs = [(p.node_a, p.node_b) for p in pairs
                        if p.kind == "module"]
        # Only the two ALUs can pair; the mult is alone in its class.
        assert module_pairs == [("M_N2", "M_N3")]

    def test_register_pairs_all(self, chain_dfg):
        design = default_design(chain_dfg)
        register_pairs = [p for p in compatible_pairs(design)
                          if p.kind == "register"]
        assert len(register_pairs) == 7 * 6 // 2

    def test_top_k_limits(self, bigger_dfg):
        design = default_design(bigger_dfg)
        analysis = analyze(design.datapath)
        assert len(top_k(design, analysis, 3)) == 3

    def test_ranking_deterministic(self, bigger_dfg):
        design = default_design(bigger_dfg)
        analysis = analyze(design.datapath)
        assert (rank_candidates(design, analysis)
                == rank_candidates(design, analysis))


class TestAlgorithm:
    def test_runs_to_completion(self, bigger_dfg):
        result = synthesize(bigger_dfg)
        result.design.validate()
        assert result.iterations > 0

    def test_compacts_hardware(self, bigger_dfg):
        base = default_design(bigger_dfg)
        result = synthesize(bigger_dfg)
        assert (result.design.binding.module_count()
                < base.binding.module_count())
        assert (result.design.binding.register_count()
                < base.binding.register_count())

    def test_no_improving_merger_remains(self, bigger_dfg):
        """Termination means no remaining merger would lower ΔC."""
        from repro.synth import try_merge
        params = SynthesisParams()
        result = synthesize(bigger_dfg, params)
        model = CostModel()
        for pair in compatible_pairs(result.design):
            outcome = try_merge(result.design, pair.kind, pair.node_a,
                                pair.node_b, model)
            if outcome is not None:
                assert outcome.delta_c(params.alpha, params.beta) >= -1e-12

    def test_full_compaction_mode(self, bigger_dfg):
        """With the literal reading every feasible merger is applied."""
        from repro.synth import try_merge
        result = synthesize(bigger_dfg,
                            SynthesisParams(require_improvement=False))
        model = CostModel()
        for pair in compatible_pairs(result.design):
            assert try_merge(result.design, pair.kind, pair.node_a,
                             pair.node_b, model) is None
        gated = synthesize(bigger_dfg)
        assert (result.design.binding.module_count()
                <= gated.design.binding.module_count())

    def test_history_records_deltas(self, bigger_dfg):
        result = synthesize(bigger_dfg,
                            SynthesisParams(k=3, alpha=2.0, beta=1.0))
        for record in result.history:
            assert record.kind in ("module", "register")
            assert record.delta_c == pytest.approx(
                2.0 * record.delta_e + 1.0 * record.delta_h)

    def test_execution_time_constraint(self, bigger_dfg):
        base_e = default_design(bigger_dfg).execution_time
        result = synthesize(bigger_dfg,
                            SynthesisParams(max_execution_time=base_e))
        assert result.design.execution_time <= base_e

    def test_params_recorded(self, bigger_dfg):
        result = synthesize(bigger_dfg, SynthesisParams(k=5),
                            CostModel(bits=4))
        assert result.params == {"k": 5, "alpha": 2.0, "beta": 1.0,
                                 "bits": 4}


class TestBaselines:
    def test_camad_valid(self, bigger_dfg):
        result = run_camad(bigger_dfg)
        result.design.validate()
        assert result.design.label == "camad"

    def test_approach1_valid(self, bigger_dfg):
        result = run_approach1(bigger_dfg)
        result.design.validate()
        assert result.design.label == "approach1"

    def test_approach2_valid(self, bigger_dfg):
        result = run_approach2(bigger_dfg)
        result.design.validate()

    def test_ours_valid(self, bigger_dfg):
        result = run_ours(bigger_dfg)
        result.design.validate()
        assert result.design.label == "ours"

    def test_run_flow_dispatch(self, bigger_dfg):
        assert run_flow("camad", bigger_dfg).design.label == "camad"
        with pytest.raises(KeyError):
            run_flow("nope", bigger_dfg)

    def test_flows_share_latency_class(self, bigger_dfg):
        """The baselines schedule at the critical-path latency."""
        a1 = run_approach1(bigger_dfg).design
        a2 = run_approach2(bigger_dfg).design
        assert a1.num_steps == a2.num_steps

    def test_ours_improves_testability_quality(self, bigger_dfg):
        """The headline claim, in miniature: our flow's average node
        testability beats CAMAD's connectivity-driven result."""
        camad = run_camad(bigger_dfg).design
        ours = run_ours(bigger_dfg).design
        assert (analyze(ours.datapath).design_quality()
                >= analyze(camad.datapath).design_quality())


class TestVerifyMergers:
    def test_verified_run_matches_plain_run(self, bigger_dfg):
        """Every merger Algorithm 1 takes on a linear design is
        semantics-preserving, so verification must not change the
        outcome — it only proves it."""
        plain = synthesize(bigger_dfg)
        checked = synthesize(bigger_dfg,
                             SynthesisParams(verify_mergers=True))
        assert ([(r.kind, r.kept, r.absorbed) for r in plain.history]
                == [(r.kind, r.kept, r.absorbed) for r in checked.history])

    def test_final_design_carries_a_valid_certificate(self, bigger_dfg):
        from repro.analysis import analyze_design
        result = synthesize(bigger_dfg,
                            SynthesisParams(verify_mergers=True))
        analysis = analyze_design(result.design)
        assert analysis.verified, analysis.report.format_text()

    def test_rejecting_verifier_blocks_every_merger(self, bigger_dfg,
                                                    monkeypatch):
        import repro.synth.algorithm as algorithm
        monkeypatch.setattr(algorithm, "_merger_verified",
                            lambda outcome: False)
        blocked = synthesize(bigger_dfg,
                             SynthesisParams(verify_mergers=True))
        assert blocked.history == []
        assert synthesize(bigger_dfg).history  # sanity: mergers do exist

    def test_verifier_not_consulted_by_default(self, bigger_dfg,
                                               monkeypatch):
        import repro.synth.algorithm as algorithm

        def explode(outcome):
            raise AssertionError("verifier must not run by default")

        monkeypatch.setattr(algorithm, "_merger_verified", explode)
        assert synthesize(bigger_dfg).history
