"""Unit tests for merger transformations with rescheduling."""

import pytest

from repro.cost import CostModel
from repro.dfg import DFGBuilder
from repro.etpn import default_design
from repro.synth import try_merge, try_merge_modules, try_merge_registers


@pytest.fixture
def model():
    return CostModel(bits=8)


class TestModuleMerger:
    def test_merges_and_reschedules(self, diamond_dfg, model):
        design = default_design(diamond_dfg)
        outcome = try_merge_modules(design, "M_N1", "M_N2", model)
        assert outcome is not None
        assert outcome.kind == "module"
        assert outcome.design.binding.module_of["N2"] == "M_N1"
        assert (outcome.design.steps["N1"]
                != outcome.design.steps["N2"])
        outcome.design.validate()

    def test_delta_e_reflects_dummy_step(self, diamond_dfg, model):
        design = default_design(diamond_dfg)
        outcome = try_merge_modules(design, "M_N1", "M_N2", model)
        # Serialising the two mults lengthens the 2-step schedule by 1.
        assert outcome.delta_e == 1.0

    def test_incompatible_classes_rejected(self, chain_dfg, model):
        design = default_design(chain_dfg)
        # N1 is a mult, N2 an add.
        assert try_merge_modules(design, "M_N1", "M_N2", model) is None

    def test_compatible_alu_merge(self, chain_dfg, model):
        design = default_design(chain_dfg)
        outcome = try_merge_modules(design, "M_N2", "M_N3", model)
        assert outcome is not None
        # Already in different steps: no execution-time penalty.
        assert outcome.delta_e == 0.0
        # One ALU saved: hardware shrinks even after the muxes appear.
        assert outcome.design.binding.module_count() == 2

    def test_order_recorded(self, diamond_dfg, model):
        design = default_design(diamond_dfg)
        outcome = try_merge_modules(design, "M_N1", "M_N2", model)
        assert sorted(outcome.order) == ["N1", "N2"]


class TestRegisterMerger:
    def test_feasible_merge(self, chain_dfg, model):
        design = default_design(chain_dfg)
        outcome = try_merge_registers(design, "R_a", "R_y", model)
        assert outcome is not None
        assert outcome.kind == "register"
        outcome.design.validate()
        assert outcome.design.binding.register_count() == 6

    def test_infeasible_same_consumer(self, diamond_dfg, model):
        design = default_design(diamond_dfg)
        # N3 reads both x and y.
        assert try_merge_registers(design, "R_x", "R_y", model) is None

    def test_register_merge_saves_hardware(self, chain_dfg, model):
        design = default_design(chain_dfg)
        outcome = try_merge_registers(design, "R_a", "R_y", model)
        assert outcome.delta_h < 0.0

    def test_dispatch(self, chain_dfg, model):
        design = default_design(chain_dfg)
        assert try_merge(design, "register", "R_a", "R_y", model) is not None
        with pytest.raises(ValueError):
            try_merge(design, "port", "PI_a", "PI_b", model)


class TestStrategyChoice:
    def test_prefers_shorter_depth_order(self, model):
        """When both orders are feasible the C/O strategy picks the one
        with the smaller time-domain sequential depth."""
        b = DFGBuilder("strat")
        b.inputs("a", "b", "c", "d", "e")
        b.op("N1", "+", "x", "a", "b")
        b.op("N2", "+", "y", "c", "d")
        b.op("N3", "*", "u", "x", "c")
        b.op("N4", "*", "w", "y", "e")
        dfg = b.build()
        design = default_design(dfg)
        outcome = try_merge_modules(design, "M_N1", "M_N2", model)
        assert outcome is not None
        # Both interleavings are feasible; the pick must be deterministic
        # and must satisfy the lifetime/step constraints.
        outcome.design.validate()
        repeat = try_merge_modules(design, "M_N1", "M_N2", model)
        assert repeat.order == outcome.order
        assert repeat.design.steps == outcome.design.steps
