"""Unit tests for the constraint-graph rescheduler (paper §4.3)."""

import pytest

from repro.alloc import default_binding
from repro.dfg import DFGBuilder, variable_lifetimes
from repro.errors import ScheduleError
from repro.sched.resched import (ConstraintGraph, build_constraints,
                                 current_module_orders,
                                 current_register_orders,
                                 merge_order_candidates, reschedule)


class TestConstraintGraph:
    def test_simple_chain(self):
        g = ConstraintGraph(ops=["a", "b", "c"])
        g.add("a", "b", 1)
        g.add("b", "c", 1)
        assert g.longest_path_schedule() == {"a": 0, "b": 1, "c": 2}

    def test_strongest_gap_wins(self):
        g = ConstraintGraph(ops=["a", "b"])
        g.add("a", "b", 1)
        g.add("a", "b", 3)
        g.add("a", "b", 2)
        assert g.longest_path_schedule() == {"a": 0, "b": 3}

    def test_cycle_returns_none(self):
        g = ConstraintGraph(ops=["a", "b"])
        g.add("a", "b", 1)
        g.add("b", "a", 1)
        assert g.longest_path_schedule() is None

    def test_positive_self_edge_infeasible(self):
        g = ConstraintGraph(ops=["a"])
        g.add("a", "a", 1)
        assert g.longest_path_schedule() is None

    def test_zero_self_edge_harmless(self):
        g = ConstraintGraph(ops=["a"])
        g.add("a", "a", 0)
        assert g.longest_path_schedule() == {"a": 0}


class TestRescheduleModules:
    def test_module_merge_separates_steps(self, diamond_dfg):
        binding = default_binding(diamond_dfg).merge_modules("M_N1", "M_N2")
        steps = reschedule(diamond_dfg, binding,
                           module_orders={"M_N1": ["N1", "N2"]},
                           register_orders={})
        assert steps is not None
        assert steps["N1"] != steps["N2"]
        assert steps["N2"] >= steps["N1"] + 1

    def test_merge_lengthens_schedule(self, diamond_dfg):
        binding = default_binding(diamond_dfg).merge_modules("M_N1", "M_N2")
        steps = reschedule(diamond_dfg, binding,
                           module_orders={"M_N1": ["N1", "N2"]},
                           register_orders={})
        # N1(0), N2(1), N3(2): one dummy step longer than the 2-step ASAP.
        assert max(steps.values()) == 2

    def test_missing_order_rejected(self, diamond_dfg):
        binding = default_binding(diamond_dfg).merge_modules("M_N1", "M_N2")
        with pytest.raises(ScheduleError):
            build_constraints(diamond_dfg, binding, {}, {})

    def test_wrong_order_contents_rejected(self, diamond_dfg):
        binding = default_binding(diamond_dfg).merge_modules("M_N1", "M_N2")
        with pytest.raises(ScheduleError):
            build_constraints(diamond_dfg, binding,
                              {"M_N1": ["N1", "N3"]}, {})


class TestRescheduleRegisters:
    def test_register_merge_serialises_lifetimes(self):
        # x and y overlap under ASAP but have independent consumers, so
        # rescheduling can serialise their lifetimes.
        b = DFGBuilder("par")
        b.inputs("a", "b", "c", "d", "e")
        b.op("N1", "+", "x", "a", "b")
        b.op("N2", "+", "y", "c", "d")
        b.op("N3", "*", "u", "x", "c")
        b.op("N4", "*", "w", "y", "e")
        dfg = b.build()
        binding = default_binding(dfg).merge_registers("R_x", "R_y")
        steps = reschedule(dfg, binding,
                           module_orders={},
                           register_orders={"R_x": ["x", "y"]})
        assert steps is not None
        lts = variable_lifetimes(dfg, steps)
        assert not lts["x"].overlaps(lts["y"])
        # y's definition was pushed after x's final use.
        assert steps["N2"] >= steps["N3"]

    def test_same_consumer_makes_merge_infeasible(self, diamond_dfg):
        # N3 reads both x and y: their lifetimes can never be disjoint
        # (the paper's case (2)).  The graph must contain a cycle.
        binding = default_binding(diamond_dfg).merge_registers("R_x", "R_y")
        for order in (["x", "y"], ["y", "x"]):
            steps = reschedule(diamond_dfg, binding,
                               module_orders={},
                               register_orders={"R_x": order})
            assert steps is None

    def test_circular_lifetimes_infeasible(self):
        # v = a+b; w = v+c; u = w+v  -> w born from v, and v read after
        # w's birth: lifetimes necessarily overlap (paper case (1)).
        b = DFGBuilder("circ")
        b.inputs("a", "b", "c")
        b.op("N1", "+", "v", "a", "b")
        b.op("N2", "+", "w", "v", "c")
        b.op("N3", "+", "u", "w", "v")
        dfg = b.build()
        binding = default_binding(dfg).merge_registers("R_v", "R_w")
        for order in (["v", "w"], ["w", "v"]):
            assert reschedule(dfg, binding, {}, {"R_v": order}) is None

    def test_feasible_input_sharing(self, chain_dfg):
        # a is consumed at N1, y is born at N2: they can share.
        binding = default_binding(chain_dfg).merge_registers("R_a", "R_y")
        steps = reschedule(chain_dfg, binding, {},
                           {"R_a": ["a", "y"]})
        assert steps is not None
        lts = variable_lifetimes(chain_dfg, steps)
        assert not lts["a"].overlaps(lts["y"])

    def test_input_after_value_needs_gap(self, chain_dfg):
        # Order y before input a: a's load must wait for y's death.
        binding = default_binding(chain_dfg).merge_registers("R_a", "R_y")
        steps = reschedule(chain_dfg, binding, {},
                           {"R_a": ["y", "a"]})
        # y is read by N3 and a by N1; N1 needs step > N3 -> but N3
        # transitively depends on N1's result: infeasible.
        assert steps is None


class TestOrderHelpers:
    def test_current_module_orders(self, diamond_dfg):
        binding = default_binding(diamond_dfg).merge_modules("M_N1", "M_N2")
        steps = {"N1": 0, "N2": 1, "N3": 2}
        orders = current_module_orders(diamond_dfg, binding, steps)
        assert orders == {"M_N1": ["N1", "N2"]}

    def test_current_register_orders(self, chain_dfg):
        binding = default_binding(chain_dfg).merge_registers("R_a", "R_y")
        steps = {"N1": 0, "N2": 1, "N3": 2}
        orders = current_register_orders(chain_dfg, binding, steps)
        assert orders == {"R_a": ["a", "y"]}

    def test_merge_candidates_distinct_ranks(self):
        cands = merge_order_candidates(["a"], ["b"], {"a": 0, "b": 2})
        assert cands == [["a", "b"]]

    def test_merge_candidates_tied_ranks(self):
        cands = merge_order_candidates(["a"], ["b"], {"a": 1, "b": 1})
        assert cands == [["a", "b"], ["b", "a"]]

    def test_merge_candidates_interleave(self):
        cands = merge_order_candidates(["a1", "a2"], ["b1"],
                                       {"a1": 0, "a2": 2, "b1": 1})
        assert cands == [["a1", "b1", "a2"]]
