"""Integration tests for the combined ATPG engine and the harness."""

import pytest

from repro.atpg import ATPGConfig, RandomPhaseConfig, run_atpg
from repro.bench import load
from repro.gates import expand_to_gates, expand_with_controller
from repro.harness import (ExperimentConfig, render_schedule, render_sharing,
                           render_summary, render_table, run_cell)
from repro.rtl import build_control_table, generate_rtl
from repro.synth import run_ours


@pytest.fixture(scope="module")
def ex_netlist():
    design = run_ours(load("ex")).design
    rtl = generate_rtl(design, 4)
    table = build_control_table(design, rtl)
    return expand_with_controller(rtl, table), design


@pytest.fixture(scope="module")
def quick_config():
    return ATPGConfig(
        random=RandomPhaseConfig(max_sequences=10, saturation=3,
                                 sequence_length=18),
        max_frames=8, max_backtracks=24)


class TestEngine:
    def test_full_run_shape(self, ex_netlist, quick_config):
        netlist, _ = ex_netlist
        result = run_atpg(netlist, quick_config)
        assert result.total_faults > 500
        assert 60.0 < result.fault_coverage <= 100.0
        assert result.test_cycles > 0
        assert result.tg_effort > 0
        assert result.tg_seconds > 0
        assert (result.detected + result.aborted_faults
                + result.untestable_faults <= result.total_faults)

    def test_deterministic_phase_optional(self, ex_netlist):
        netlist, _ = ex_netlist
        config = ATPGConfig(
            random=RandomPhaseConfig(max_sequences=6, saturation=2,
                                     sequence_length=18),
            deterministic=False)
        result = run_atpg(netlist, config)
        assert result.detected_deterministic == 0
        assert result.deterministic_cycles == 0

    def test_fault_sampling_scales_universe(self, ex_netlist, quick_config):
        from dataclasses import replace
        netlist, _ = ex_netlist
        full = run_atpg(netlist, replace(quick_config, deterministic=False))
        sampled = run_atpg(netlist, replace(quick_config,
                                            deterministic=False,
                                            fault_fraction=0.25))
        assert sampled.total_faults < full.total_faults
        assert sampled.total_faults >= full.total_faults // 5

    def test_deterministic_run_repeatable(self, ex_netlist, quick_config):
        netlist, _ = ex_netlist
        a = run_atpg(netlist, quick_config)
        b = run_atpg(netlist, quick_config)
        assert a.fault_coverage == b.fault_coverage
        assert a.test_cycles == b.test_cycles

    def test_free_control_mode_exposes_control_pins(self, quick_config):
        """Free-control expansion exposes every control signal as a PI;
        the embedded-FSM expansion leaves only the data ports."""
        design = run_ours(load("ex")).design
        rtl = generate_rtl(design, 4)
        free_net = expand_to_gates(rtl)
        fsm_net = expand_with_controller(rtl,
                                         build_control_table(design, rtl))
        assert len(free_net.inputs) > len(fsm_net.inputs)
        assert len(fsm_net.inputs) == 4 * len(rtl.in_ports)
        free = run_atpg(free_net, quick_config)
        fsm = run_atpg(fsm_net, quick_config)
        assert free.fault_coverage > 60.0
        assert fsm.fault_coverage > 60.0


class TestHarness:
    @pytest.fixture(scope="class")
    def cell(self):
        config = ExperimentConfig(
            bits=4,
            random=RandomPhaseConfig(max_sequences=8, saturation=3),
            max_backtracks=16)
        return run_cell("ex", "ours", config)

    def test_cell_row_fields(self, cell):
        row = cell.row()
        assert row["benchmark"] == "ex"
        assert row["flow"] == "ours"
        assert row["bits"] == 4
        assert row["coverage_pct"] > 60
        assert row["area_mm2"] > 0

    def test_render_table(self, cell):
        text = render_table("ex", [cell])
        assert "Ours" in text
        assert "%" in text
        assert "(*)" in text or "(+" in text

    def test_render_summary(self, cell):
        text = render_summary([cell])
        assert "ex" in text and "ours" in text

    def test_render_schedule(self, cell):
        text = render_schedule(cell.design)
        assert "step 0" in text
        assert "N21" in text

    def test_render_sharing(self, cell):
        text = render_sharing(cell.design)
        assert "share" in text

    def test_narrowed_cell_shrinks_area(self, cell):
        quick = dict(bits=16, fault_fraction=0.05,
                     random=RandomPhaseConfig(max_sequences=4, saturation=2,
                                              sequence_length=12),
                     max_backtracks=8)
        narrowed = run_cell("ex", "ours",
                            ExperimentConfig(narrow_widths=True,
                                             narrow_input_bits=8, **quick))
        plain = run_cell("ex", "ours", ExperimentConfig(**quick))
        assert narrowed.row()["narrowed"] is True
        assert plain.row()["narrowed"] is False
        assert narrowed.area_mm2 < plain.area_mm2
