"""Unit tests for the testability report renderers and HDL optimise flag."""


from repro.bench import load
from repro.etpn import default_design
from repro.hdl import compile_source
from repro.synth import run_ours
from repro.testability import analyze, depth_report
from repro.testability import testability_report as node_report


class TestTestabilityReport:
    def test_every_node_listed(self, chain_dfg):
        design = default_design(chain_dfg)
        report = node_report(design.datapath)
        for node_id in design.datapath.nodes:
            assert node_id in report

    def test_verdicts_present(self):
        design = run_ours(load("ex")).design
        report = node_report(design.datapath)
        assert "C-dominant" in report or "O-dominant" in report \
            or "balanced" in report
        assert "design quality" in report

    def test_accepts_precomputed_analysis(self, chain_dfg):
        design = default_design(chain_dfg)
        analysis = analyze(design.datapath)
        a = node_report(design.datapath, analysis)
        b = node_report(design.datapath)
        assert a == b

    def test_input_nodes_c_dominant(self, chain_dfg):
        design = default_design(chain_dfg)
        report = node_report(design.datapath)
        line = next(l for l in report.splitlines()
                    if l.startswith("PI_a "))
        assert "C-dominant" in line or "balanced" in line


class TestDepthReport:
    def test_sum_row(self, chain_dfg):
        design = default_design(chain_dfg)
        report = depth_report(design.datapath)
        assert report.splitlines()[-1].startswith("SUM")

    def test_all_registers_listed(self, chain_dfg):
        design = default_design(chain_dfg)
        report = depth_report(design.datapath)
        for register in design.binding.registers():
            assert register in report


class TestHdlOptimizeFlag:
    SOURCE = """
    design opt;
    input a, b;
    output o;
    begin
      c := 2 + 3;
      t1 := a * b;
      t2 := a * b;   -- CSE candidate
      o := t1 + t2;
      junk := a - b; -- dead
    end
    """

    def test_unoptimised_keeps_everything(self):
        dfg = compile_source(self.SOURCE)
        assert len(dfg) == 5

    def test_optimised_smaller_same_behaviour(self):
        from repro.rtl import evaluate_dfg
        plain = compile_source(self.SOURCE)
        optimised = compile_source(self.SOURCE, optimize=True, bits=8)
        assert len(optimised) < len(plain)
        for a, b in ((3, 4), (7, 9)):
            assert (evaluate_dfg(plain, {"a": a, "b": b}, 8)["o"]
                    == evaluate_dfg(optimised, {"a": a, "b": b}, 8)["o"])
