"""The service WAL: append, replay, fold rules, crash contract."""

from __future__ import annotations

import json

import pytest

from repro.runtime.chaos import (ACTION_RAISE, ChaosError, Injection)
from repro.service.ledger import (CANCELLED, DONE, FAILED, QUARANTINED,
                                  RUNNING, SUBMITTED, WAL_FORMAT, Ledger,
                                  fold_transitions)


def _wal(tmp_path):
    return Ledger(tmp_path / "wal.jsonl")


class TestAppend:
    def test_transitions_round_trip_in_commit_order(self, tmp_path):
        ledger = _wal(tmp_path)
        ledger.append("j1", SUBMITTED)
        ledger.append("j1", RUNNING, attempt=1)
        ledger.append("j1", DONE, attempt=1)
        states = [t["state"] for t in ledger.transitions()]
        assert states == [SUBMITTED, RUNNING, DONE]

    def test_every_transition_carries_format_and_timestamp(self, tmp_path):
        ledger = _wal(tmp_path)
        record = ledger.append("j1", SUBMITTED)
        assert record["format"] == WAL_FORMAT
        assert isinstance(record["ts"], float)

    def test_unknown_state_is_rejected_before_committing(self, tmp_path):
        ledger = _wal(tmp_path)
        with pytest.raises(ValueError, match="unknown job state"):
            ledger.append("j1", "exploded")
        assert ledger.transitions() == []

    def test_reason_and_recovered_are_preserved(self, tmp_path):
        ledger = _wal(tmp_path)
        ledger.append("j1", FAILED, reason="boom")
        ledger.append("j1", DONE, recovered=True)
        transitions = ledger.transitions()
        assert transitions[0]["reason"] == "boom"
        assert transitions[1]["recovered"] is True

    def test_append_visits_the_service_ledger_seam(self, tmp_path, chaos):
        ledger = _wal(tmp_path)
        chaos(Injection("service.ledger_write", ACTION_RAISE))
        with pytest.raises(ChaosError):
            ledger.append("j1", SUBMITTED)
        assert ledger.transitions() == []  # failure landed pre-commit


class TestCrashContract:
    def test_torn_final_line_is_dropped_on_replay(self, tmp_path):
        ledger = _wal(tmp_path)
        ledger.append("j1", SUBMITTED)
        ledger.append("j1", RUNNING)
        with open(ledger.path, "a") as handle:
            handle.write('{"format": "repro-service-wal-v1", "kind": "tr')
        assert [t["state"] for t in ledger.transitions()] == [SUBMITTED,
                                                              RUNNING]

    def test_compact_repairs_a_torn_tail(self, tmp_path):
        ledger = _wal(tmp_path)
        ledger.append("j1", SUBMITTED)
        with open(ledger.path, "a") as handle:
            handle.write('{"torn')
        ledger.compact()
        lines = ledger.path.read_text().splitlines()
        assert len(lines) == 1 and json.loads(lines[0])["job"] == "j1"

    def test_empty_ledger_replays_to_empty_table(self, tmp_path):
        assert _wal(tmp_path).replay() == {}


def _fold(*pairs):
    return fold_transitions([{"job": job, "state": state}
                             for job, state in pairs])


class TestFoldRules:
    def test_happy_path_counts_one_attempt(self):
        (state,) = _fold(("j", SUBMITTED), ("j", RUNNING),
                         ("j", DONE)).values()
        assert (state.state, state.attempts, state.failures) == (DONE, 1, 0)

    def test_done_resets_consecutive_failures(self):
        (state,) = _fold(("j", SUBMITTED), ("j", RUNNING), ("j", FAILED),
                         ("j", RUNNING), ("j", DONE)).values()
        assert state.failures == 0 and state.attempts == 2

    def test_resubmitting_a_done_job_is_a_noop(self):
        (state,) = _fold(("j", SUBMITTED), ("j", RUNNING), ("j", DONE),
                         ("j", SUBMITTED)).values()
        assert state.state == DONE

    def test_resubmitting_revives_a_cancelled_job(self):
        (state,) = _fold(("j", SUBMITTED), ("j", CANCELLED),
                         ("j", SUBMITTED)).values()
        assert state.state == SUBMITTED

    def test_quarantine_is_sticky_against_cancel(self):
        (state,) = _fold(("j", SUBMITTED), ("j", QUARANTINED),
                         ("j", CANCELLED)).values()
        assert state.state == QUARANTINED

    def test_done_wins_over_a_later_stray_quarantine(self):
        (state,) = _fold(("j", SUBMITTED), ("j", RUNNING), ("j", DONE),
                         ("j", QUARANTINED)).values()
        assert state.state == DONE

    def test_submit_seq_preserves_fifo_order(self):
        states = _fold(("a", SUBMITTED), ("b", SUBMITTED),
                       ("c", SUBMITTED))
        assert [s.submit_seq for s in states.values()] == [0, 1, 2]

    def test_malformed_transitions_are_skipped(self):
        states = fold_transitions([
            {"job": "j", "state": SUBMITTED},
            {"job": None, "state": RUNNING},
            {"job": "j", "state": "not-a-state"},
        ])
        assert states["j"].state == SUBMITTED and states["j"].attempts == 0
