"""Unit tests for the gate netlist container and compiled simulator."""

import pytest

from repro.errors import NetlistError
from repro.gates import CompiledCircuit, GateNetlist, GateType
from repro.gates.simulate import FULL


class TestNetlistStructure:
    def test_source_takes_no_fanins(self):
        net = GateNetlist("n")
        with pytest.raises(NetlistError):
            net.add(GateType.CONST0, (0,))

    def test_fanins_must_exist(self):
        net = GateNetlist("n")
        with pytest.raises(NetlistError):
            net.add(GateType.NOT, (5,))

    def test_gate_needs_fanins(self):
        net = GateNetlist("n")
        with pytest.raises(NetlistError):
            net.add(GateType.AND)

    def test_duplicate_input(self):
        net = GateNetlist("n")
        net.add_input("a")
        with pytest.raises(NetlistError):
            net.add_input("a")

    def test_dff_two_phase(self):
        net = GateNetlist("n")
        q = net.add_dff("q")
        a = net.add_input("a")
        d = net.add(GateType.XOR, (q, a))
        net.connect_dff(q, d)
        net.check_complete()
        assert net.gates[q].fanins == (d,)

    def test_unconnected_dff_detected(self):
        net = GateNetlist("n")
        net.add_dff("q")
        with pytest.raises(NetlistError):
            net.check_complete()

    def test_double_connect_rejected(self):
        net = GateNetlist("n")
        q = net.add_dff("q")
        a = net.add_input("a")
        net.connect_dff(q, a)
        with pytest.raises(NetlistError):
            net.connect_dff(q, a)

    def test_stats(self):
        net = GateNetlist("n")
        a = net.add_input("a")
        b = net.add_input("b")
        g = net.add(GateType.AND, (a, b))
        net.set_output("o", g)
        assert net.stats() == {"gates": 3, "combinational": 1, "dffs": 0,
                               "inputs": 2, "outputs": 1}


class TestCompiledSimulator:
    def _toggle_circuit(self):
        """A T flip-flop: q' = q XOR t."""
        net = GateNetlist("toggle")
        q = net.add_dff("q")
        t = net.add_input("t")
        d = net.add(GateType.XOR, (q, t))
        net.connect_dff(q, d)
        net.set_output("q", q)
        return CompiledCircuit(net)

    def test_sequential_state(self):
        circuit = self._toggle_circuit()
        outs, state = circuit.run([{"t": FULL}, {"t": 0}, {"t": FULL}])
        # Output shows the state *before* each clock edge.
        assert outs[0]["q"] == 0
        assert outs[1]["q"] == FULL
        assert outs[2]["q"] == FULL
        assert state == [0]

    def test_initial_state_override(self):
        circuit = self._toggle_circuit()
        outs, _ = circuit.run([{"t": 0}], state=[FULL])
        assert outs[0]["q"] == FULL

    def test_gate_types_compile(self):
        net = GateNetlist("all")
        a = net.add_input("a")
        b = net.add_input("b")
        net.set_output("and", net.add(GateType.AND, (a, b)))
        net.set_output("or", net.add(GateType.OR, (a, b)))
        net.set_output("nand", net.add(GateType.NAND, (a, b)))
        net.set_output("nor", net.add(GateType.NOR, (a, b)))
        net.set_output("xor", net.add(GateType.XOR, (a, b)))
        net.set_output("xnor", net.add(GateType.XNOR, (a, b)))
        net.set_output("not", net.add(GateType.NOT, (a,)))
        net.set_output("buf", net.add(GateType.BUF, (a,)))
        net.set_output("c1", net.add(GateType.CONST1))
        circuit = CompiledCircuit(net)
        outs, _ = circuit.run([{"a": 0b1100, "b": 0b1010}])
        o = outs[0]
        assert o["and"] == 0b1000
        assert o["or"] == 0b1110
        assert o["nand"] == FULL ^ 0b1000
        assert o["nor"] == FULL ^ 0b1110
        assert o["xor"] == 0b0110
        assert o["xnor"] == FULL ^ 0b0110
        assert o["not"] == FULL ^ 0b1100
        assert o["buf"] == 0b1100
        assert o["c1"] == FULL

    def test_fault_injection_hook(self):
        net = GateNetlist("inj")
        a = net.add_input("a")
        b = net.add_input("b")
        g = net.add(GateType.AND, (a, b))
        net.set_output("o", g)
        circuit = CompiledCircuit(net)
        fn = circuit.cycle_fn((g,))
        # Stuck-at-1 on the AND output in lane 1 only.
        lane1 = 1 << 1
        outs, _ = fn([0, 0], [], [FULL ^ lane1], [lane1])
        assert outs[0] == lane1  # good lanes 0, faulty lane forced to 1

    def test_cycle_fn_cached(self):
        circuit = self._toggle_circuit()
        assert circuit.cycle_fn(()) is circuit.cycle_fn(())
