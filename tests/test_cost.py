"""Unit tests for the module library, floorplanner and cost estimators."""

import pytest

from repro.alloc import default_binding
from repro.cost import CostModel, DEFAULT_LIBRARY, floorplan
from repro.cost.floorplan import Slot, _spiral
from repro.dfg import UnitClass
from repro.etpn import DataPath, default_design


class TestLibrary:
    def test_multiplier_grows_quadratically(self):
        lib = DEFAULT_LIBRARY
        a4 = lib.unit_area(UnitClass.MULTIPLIER, 4)
        a8 = lib.unit_area(UnitClass.MULTIPLIER, 8)
        a16 = lib.unit_area(UnitClass.MULTIPLIER, 16)
        assert a8 / a4 > 2.0          # super-linear
        assert a16 / a8 > 2.0

    def test_alu_grows_linearly(self):
        lib = DEFAULT_LIBRARY
        a4 = lib.unit_area(UnitClass.ALU, 4)
        a8 = lib.unit_area(UnitClass.ALU, 8)
        assert a8 == pytest.approx(2 * a4 - lib.units[UnitClass.ALU].fixed)

    def test_mux_area_zero_below_two_inputs(self):
        lib = DEFAULT_LIBRARY
        assert lib.mux_area(1, 8) == 0.0
        assert lib.mux_area(0, 8) == 0.0
        assert lib.mux_area(3, 8) > lib.mux_area(2, 8) > 0.0

    def test_multiplier_bigger_than_alu(self):
        lib = DEFAULT_LIBRARY
        for bits in (4, 8, 16):
            assert (lib.unit_area(UnitClass.MULTIPLIER, bits)
                    > lib.unit_area(UnitClass.ALU, bits))


class TestSpiral:
    def test_starts_at_origin(self):
        slots = list(_spiral(9))
        assert slots[0] == Slot(0, 0)

    def test_unique_slots(self):
        slots = list(_spiral(60))
        assert len(slots) == 60
        assert len(set(slots)) == 60

    def test_manhattan_distance(self):
        assert Slot(0, 0).distance(Slot(3, 4)) == 7


class TestFloorplan:
    def test_every_node_placed(self, chain_dfg):
        dp = default_design(chain_dfg).datapath
        plan = floorplan(dp, DEFAULT_LIBRARY.slot_pitch_mm)
        assert set(plan.positions) == set(dp.nodes)

    def test_positions_unique(self, chain_dfg):
        dp = default_design(chain_dfg).datapath
        plan = floorplan(dp, DEFAULT_LIBRARY.slot_pitch_mm)
        slots = list(plan.positions.values())
        assert len(set(slots)) == len(slots)

    def test_deterministic(self, chain_dfg):
        dp = default_design(chain_dfg).datapath
        p1 = floorplan(dp, 0.1)
        p2 = floorplan(dp, 0.1)
        assert p1.positions == p2.positions

    def test_connected_nodes_near(self, chain_dfg):
        dp = default_design(chain_dfg).datapath
        plan = floorplan(dp, 0.1)
        # A register and the module it feeds should be close by
        # construction (within a few slots).
        d = plan.positions["R_a"].distance(plan.positions["M_N1"])
        assert d <= 4

    def test_bounding_box_reasonable(self, chain_dfg):
        dp = default_design(chain_dfg).datapath
        plan = floorplan(dp, 0.1)
        w, h = plan.bounding_box()
        assert w * h >= len(dp.nodes)


class TestCostModel:
    def test_hardware_itemisation(self, chain_dfg):
        dp = default_design(chain_dfg).datapath
        cost = CostModel(bits=8).hardware(dp)
        assert cost.units_mm2 > 0
        assert cost.registers_mm2 > 0
        assert cost.wiring_mm2 > 0
        assert cost.muxes_mm2 == 0.0  # default binding has no muxes
        assert cost.total_mm2 == pytest.approx(
            cost.units_mm2 + cost.registers_mm2 + cost.muxes_mm2
            + cost.wiring_mm2)

    def test_wider_datapath_costs_more(self, chain_dfg):
        dp = default_design(chain_dfg).datapath
        assert (CostModel(bits=16).hardware_total(dp)
                > CostModel(bits=8).hardware_total(dp)
                > CostModel(bits=4).hardware_total(dp))

    def test_register_merge_reduces_register_area(self, chain_dfg):
        model = CostModel(bits=8)
        base = default_design(chain_dfg).datapath
        merged = DataPath(chain_dfg,
                          default_binding(chain_dfg).merge_registers("R_a", "R_y"))
        assert (model.hardware(merged).registers_mm2
                < model.hardware(base).registers_mm2)

    def test_delta(self, chain_dfg):
        model = CostModel(bits=8)
        design = default_design(chain_dfg)
        merged = design.replaced(
            binding=design.binding.merge_registers("R_a", "R_y"))
        delta_e, delta_h = model.delta(design, merged)
        assert delta_e == 0.0           # schedule unchanged
        assert delta_h < 0.0            # one register saved

    def test_execution_cost(self, chain_dfg):
        model = CostModel(bits=8)
        assert model.execution(default_design(chain_dfg)) == 3

    def test_area_calibration_magnitude(self, chain_dfg):
        # A small design at 8 bits should land well under 1 mm² —
        # same order of magnitude as the paper's tables.
        total = CostModel(bits=8).hardware_total(
            default_design(chain_dfg).datapath)
        assert 0.01 < total < 1.0
