"""Unit and integration tests for the scan extension."""

import pytest

from repro.atpg import ATPGConfig, Fault, RandomPhaseConfig
from repro.atpg.podem import PodemEngine
from repro.bench import load
from repro.errors import NetlistError
from repro.gates import CompiledCircuit, expand_to_gates, GateNetlist
from repro.gates.simulate import FULL
from repro.rtl import generate_rtl
from repro.scan import (ScanTestCost, chain_bits_for_registers,
                        evaluate_scan, insert_scan_chain,
                        register_dependency_graph, scan_load_sequence,
                        select_by_depth, select_full, select_loop_breaking,
                        unroll_full_scan)
from repro.synth import run_ours


@pytest.fixture()
def ex_design():
    return run_ours(load("ex")).design


@pytest.fixture()
def ex_netlist(ex_design):
    return expand_to_gates(generate_rtl(ex_design, 4))


class TestSelection:
    def test_dependency_graph_edges(self, ex_design):
        graph = register_dependency_graph(ex_design.datapath)
        assert set(graph) == {r.node_id
                              for r in ex_design.datapath.registers()}
        assert any(graph.values())     # some register feeds another

    def test_loop_breaking_breaks_all_cycles(self, ex_design):
        from repro.scan.selection import _has_cycle
        dp = ex_design.datapath
        selected = select_loop_breaking(dp)
        graph = register_dependency_graph(dp)
        assert _has_cycle(graph, set(selected)) == []

    def test_loop_breaking_minimal_ish(self, ex_design):
        selected = select_loop_breaking(ex_design.datapath)
        registers = len(ex_design.datapath.registers())
        assert 0 < len(selected) < registers

    def test_depth_selection_budget(self, ex_design):
        assert len(select_by_depth(ex_design.datapath, 2)) == 2
        assert select_by_depth(ex_design.datapath, 0) == []

    def test_depth_selection_picks_deepest(self, ex_design):
        from repro.testability import register_depths
        depths = register_depths(ex_design.datapath)
        chosen = select_by_depth(ex_design.datapath, 1)[0]
        assert depths[chosen].total == max(d.total for d in depths.values())

    def test_full_selection(self, ex_design):
        assert (len(select_full(ex_design.datapath))
                == ex_design.datapath.registers().__len__())


class TestChainInsertion:
    def test_chain_length(self, ex_netlist, ex_design):
        registers = select_full(ex_design.datapath)
        chain = insert_scan_chain(ex_netlist, registers)
        assert chain.length == 4 * len(registers)
        assert "scan_enable" in ex_netlist.inputs
        assert "scan_out" in ex_netlist.outputs

    def test_double_insertion_rejected(self, ex_netlist, ex_design):
        registers = select_full(ex_design.datapath)
        insert_scan_chain(ex_netlist, registers)
        with pytest.raises(NetlistError):
            insert_scan_chain(ex_netlist, registers)

    def test_empty_selection_rejected(self, ex_netlist):
        with pytest.raises(NetlistError):
            insert_scan_chain(ex_netlist, [])

    def test_unknown_register_rejected(self, ex_netlist):
        with pytest.raises(NetlistError):
            chain_bits_for_registers(ex_netlist, ["R_nothere"])

    def test_shift_behaviour(self):
        """Values shifted in land in chain order; functional mode holds."""
        net = GateNetlist("two_flops")
        q0 = net.add_dff("r[0]")
        q1 = net.add_dff("s[0]")
        a = net.add_input("a")
        net.connect_dff(q0, a)
        net.connect_dff(q1, q0)
        net.set_output("o", q1)
        chain = insert_scan_chain(net, ["r", "s"])
        circuit = CompiledCircuit(net)
        vectors = scan_load_sequence(circuit.input_names, chain, [1, 0],
                                     fill={"a": 0})
        broadcast = [{k: (FULL if v else 0) for k, v in cyc.items()}
                     for cyc in vectors]
        _, state = circuit.run(broadcast)
        dff_index = {circuit.netlist.gates[g].name: i
                     for i, g in enumerate(circuit.dff_gids)}
        assert state[dff_index["r[0]"]] == FULL   # wanted 1
        assert state[dff_index["s[0]"]] == 0      # wanted 0


class TestFullScanModel:
    def test_pseudo_pis_and_pos(self, ex_netlist, ex_design):
        registers = select_full(ex_design.datapath)
        insert_scan_chain(ex_netlist, registers)
        model = unroll_full_scan(ex_netlist)
        names = {name for _, name in model.pi_names.values()}
        assert any(name.startswith("ppi:") for name in names)
        po_names = {name for _, name in model.po_names.values()}
        assert any(name.startswith("ppo:") for name in po_names)
        # scan controls are constants, not PIs.
        assert "scan_enable" not in names

    def test_podem_on_full_scan_model(self, ex_netlist, ex_design):
        registers = select_full(ex_design.datapath)
        insert_scan_chain(ex_netlist, registers)
        model = unroll_full_scan(ex_netlist)
        engine = PodemEngine(model, max_backtracks=32)
        # A register-output fault is now directly loadable/observable.
        dff = ex_netlist.dffs()[0]
        outcome = engine.generate(Fault(dff.gid, 0))
        assert outcome.success or not outcome.aborted

    def test_scan_test_cost(self):
        assert ScanTestCost(tests=0, chain_length=10).cycles == 0
        assert ScanTestCost(tests=3, chain_length=10).cycles == 4 * 10 + 3


class TestEvaluate:
    def test_full_scan_improves_coverage(self, ex_design):
        """Full scan reaches at least the no-scan coverage (usually far
        more) at the cost of extra cycles."""
        from repro.atpg import run_atpg
        netlist = expand_to_gates(generate_rtl(ex_design, 4))
        config = ATPGConfig(
            random=RandomPhaseConfig(max_sequences=6, saturation=2,
                                     sequence_length=16),
            max_frames=6, max_backtracks=24)
        baseline = run_atpg(netlist, config)
        scan = evaluate_scan(netlist, select_full(ex_design.datapath),
                             config)
        assert scan.fault_coverage >= baseline.fault_coverage - 2.0
        assert scan.chain_length > 0
        assert scan.overhead_mm2 > 0

    def test_partial_scan_cheaper_than_full(self, ex_design):
        netlist = expand_to_gates(generate_rtl(ex_design, 4))
        config = ATPGConfig(
            random=RandomPhaseConfig(max_sequences=4, saturation=2,
                                     sequence_length=12),
            max_backtracks=12)
        partial = evaluate_scan(netlist,
                                select_loop_breaking(ex_design.datapath),
                                config)
        full = evaluate_scan(netlist, select_full(ex_design.datapath),
                             config)
        assert partial.chain_length < full.chain_length
        assert partial.overhead_mm2 < full.overhead_mm2
