"""Tests for StructuralCertificate: verdicts, witnesses, self-check.

The hypothesis section is the heart of the tentpole's soundness story:
on randomly generated small nets, every *decided* structural verdict
must agree with exhaustive enumeration, and every certificate must pass
its own independent re-verification.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (ReachabilityGraph, Verdict, stuck_markings,
                            structural_certificate)
from repro.bench import load, names
from repro.etpn.from_dfg import default_design
from repro.harness.experiment import synthesize_flow
from repro.petri.net import PetriNet


def chain_net(length: int = 4) -> PetriNet:
    net = PetriNet("chain")
    for i in range(length):
        net.add_place(f"S{i}")
    for i in range(length - 1):
        net.add_transition(f"t{i}", [f"S{i}"], [f"S{i + 1}"])
    net.set_initial("S0")
    net.set_final(f"S{length - 1}")
    return net


def fork_join_net() -> PetriNet:
    net = PetriNet("fj")
    for p in ("S0", "A0", "A1", "B0", "B1", "J"):
        net.add_place(p)
    net.add_transition("fork", ["S0"], ["A0", "B0"])
    net.add_transition("ta", ["A0"], ["A1"])
    net.add_transition("tb", ["B0"], ["B1"])
    net.add_transition("join", ["A1", "B1"], ["J"])
    net.set_initial("S0")
    net.set_final("J")
    return net


def unsafe_net() -> PetriNet:
    """tu marks B while B may already be marked: not safe."""
    net = PetriNet("unsafe")
    for p in ("S0", "A", "B"):
        net.add_place(p)
    net.add_transition("tfork", ["S0"], ["A", "B"])
    net.add_transition("tu", ["A"], ["B"])
    net.set_initial("S0")
    net.set_final("B")
    return net


def stuck_net() -> PetriNet:
    """The join can never be supplied: a reachable stuck marking."""
    net = PetriNet("stuck")
    for p in ("S0", "A", "B", "J"):
        net.add_place(p)
    net.add_transition("ta", ["S0"], ["A"])
    net.add_transition("tb", ["S0"], ["B"])
    net.add_transition("join", ["A", "B"], ["J"])
    net.set_initial("S0")
    net.set_final("J")
    return net


class TestVerdicts:
    def test_chain_all_proved(self):
        cert = structural_certificate(chain_net())
        assert cert.safe is Verdict.PROVED
        assert cert.bounded is Verdict.PROVED
        assert cert.conservative is Verdict.PROVED
        assert cert.deadlock_free is Verdict.PROVED
        assert cert.dead_transitions == ()
        assert cert.check(chain_net()) == []

    def test_fork_join_proved_safe_and_live(self):
        net = fork_join_net()
        cert = structural_certificate(net)
        assert cert.safe is Verdict.PROVED
        assert cert.deadlock_free is Verdict.PROVED
        assert cert.check(net) == []

    def test_unsafe_net_not_proved_safe(self):
        cert = structural_certificate(unsafe_net())
        assert cert.safe is not Verdict.PROVED
        assert "B" in cert.uncovered_places

    def test_stuck_net_not_proved_deadlock_free(self):
        net = stuck_net()
        cert = structural_certificate(net)
        assert cert.deadlock_free is not Verdict.PROVED
        assert cert.uncontrolled_siphons
        # The join is invariant-dead: its input places are exclusive.
        assert "join" in cert.invariant_dead
        assert "join" in cert.dead_transitions

    def test_mutual_exclusion(self):
        cert = structural_certificate(fork_join_net())
        assert cert.mutually_exclusive("A0", "A1")
        assert cert.mutually_exclusive("S0", "J")
        assert not cert.mutually_exclusive("A0", "B0")
        assert not cert.mutually_exclusive("A0", "B1")

    def test_bound_and_covers(self):
        cert = structural_certificate(chain_net())
        assert cert.covers("S0")
        assert cert.bound("S0") == 1

    def test_to_dict_is_deterministic(self):
        net = fork_join_net()
        assert structural_certificate(net).to_dict() \
            == structural_certificate(net).to_dict()

    def test_to_dict_excludes_timings(self):
        cert = structural_certificate(chain_net())
        assert "elapsed_seconds" not in cert.to_dict()
        assert cert.elapsed_seconds >= 0.0

    def test_check_rejects_foreign_net(self):
        cert = structural_certificate(chain_net(3))
        assert cert.check(fork_join_net()) != []


class TestBenchmarks:
    def test_every_benchmark_proved_both_flows(self):
        for name in names():
            for design in (default_design(load(name)),
                           synthesize_flow(name, "ours", 8)):
                net = design.control_net
                cert = structural_certificate(net)
                graph = ReachabilityGraph(net)
                # Structural verdicts match enumeration exactly.
                assert (cert.safe is Verdict.PROVED) == graph.is_safe(), name
                assert (cert.deadlock_free is Verdict.PROVED) \
                    == (not stuck_markings(net, graph)), name
                assert cert.check(net) == [], name


# ----------------------------------------------------------------------
# Property-based soundness: random nets, structural vs enumerative.
# ----------------------------------------------------------------------
@st.composite
def random_nets(draw):
    """Small random nets: 2-6 places, 1-6 transitions of 1-2 in/outputs."""
    n_places = draw(st.integers(2, 6))
    places = [f"P{i}" for i in range(n_places)]
    n_transitions = draw(st.integers(1, 6))
    net = PetriNet("rand")
    for p in places:
        net.add_place(p)
    place_subset = st.lists(st.sampled_from(places), min_size=1,
                            max_size=2, unique=True)
    for t in range(n_transitions):
        net.add_transition(f"t{t}", draw(place_subset), draw(place_subset))
    initial = draw(place_subset)
    net.set_initial(*initial)
    net.set_final(draw(st.sampled_from(places)))
    return net


@settings(max_examples=80, deadline=None)
@given(random_nets())
def test_structural_verdicts_sound_on_random_nets(net):
    cert = structural_certificate(net)
    assert cert.check(net) == [], "certificate must self-verify"
    graph = ReachabilityGraph(net, max_markings=5000)

    if cert.safe.decided:
        assert (cert.safe is Verdict.PROVED) == graph.is_safe()
    if cert.deadlock_free.decided:
        enum_live = not stuck_markings(net, graph)
        assert (cert.deadlock_free is Verdict.PROVED) == enum_live

    fired = {edge.trans_id for edge in graph.edges}
    assert not (set(cert.dead_transitions) & fired), \
        "a proved-dead transition fired"

    reached = set().union(*graph.markings) if graph.markings else set()
    assert reached <= set(cert.structurally_reachable), \
        "closure must over-approximate reachability"

    for marking in graph.markings:
        for p in marking:
            for q in marking:
                if p < q:
                    assert not cert.mutually_exclusive(p, q), \
                        f"proved-exclusive pair {p},{q} co-marked"
