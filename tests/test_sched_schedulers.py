"""Unit tests for FDS, list scheduling and mobility-path scheduling."""

import pytest

from repro.dfg import DFGBuilder, UnitClass
from repro.errors import ScheduleError
from repro.sched import (check_precedence, fds_schedule, frames,
                         list_schedule, minimum_horizon,
                         mobility_path_schedule, peak_usage, schedule_length)


@pytest.fixture
def wide_dfg():
    """Four independent mults feeding a reduction tree of adds."""
    b = DFGBuilder("wide")
    b.inputs("a", "b", "c", "d", "e", "f", "g", "h")
    b.op("M1", "*", "p", "a", "b")
    b.op("M2", "*", "q", "c", "d")
    b.op("M3", "*", "r", "e", "f")
    b.op("M4", "*", "s", "g", "h")
    b.op("A1", "+", "t", "p", "q")
    b.op("A2", "+", "u", "r", "s")
    b.op("A3", "+", "v", "t", "u")
    b.outputs("v")
    return b.build()


class TestFrames:
    def test_frames_match_asap_alap(self, chain_dfg):
        f = frames(chain_dfg, horizon=3)
        assert f == {"N1": (0, 0), "N2": (1, 1), "N3": (2, 2)}

    def test_fixed_narrows_neighbours(self, wide_dfg):
        free = frames(wide_dfg, horizon=4)
        assert free["M1"] == (0, 1)
        fixed = frames(wide_dfg, horizon=4, fixed={"A1": 1})
        assert fixed["M1"] == (0, 0)

    def test_fixed_out_of_frame_rejected(self, chain_dfg):
        with pytest.raises(ScheduleError):
            frames(chain_dfg, horizon=3, fixed={"N2": 2})


class TestFDS:
    def test_valid_schedule(self, wide_dfg):
        steps = fds_schedule(wide_dfg)
        check_precedence(wide_dfg, steps)

    def test_respects_horizon(self, wide_dfg):
        steps = fds_schedule(wide_dfg, horizon=4)
        assert schedule_length(steps) <= 4

    def test_balances_multipliers(self, wide_dfg):
        # Critical path is 3; ASAP would put all 4 mults in step 0.
        # With horizon 4 FDS should spread them to at most 2 per step.
        steps = fds_schedule(wide_dfg, horizon=4)
        peaks = peak_usage(wide_dfg, steps)
        assert peaks[UnitClass.MULTIPLIER] <= 2

    def test_chain_is_fixed(self, chain_dfg):
        assert fds_schedule(chain_dfg) == {"N1": 0, "N2": 1, "N3": 2}

    def test_deterministic(self, wide_dfg):
        assert fds_schedule(wide_dfg, 4) == fds_schedule(wide_dfg, 4)


class TestListScheduling:
    def test_valid_schedule(self, wide_dfg):
        steps = list_schedule(wide_dfg, {UnitClass.MULTIPLIER: 1})
        check_precedence(wide_dfg, steps)

    def test_resource_limit_enforced(self, wide_dfg):
        steps = list_schedule(wide_dfg, {UnitClass.MULTIPLIER: 1})
        assert peak_usage(wide_dfg, steps)[UnitClass.MULTIPLIER] == 1
        # Four mults serialised on one unit: at least 4 steps.
        assert schedule_length(steps) >= 4

    def test_unconstrained_matches_asap_length(self, wide_dfg):
        steps = list_schedule(wide_dfg, {})
        assert schedule_length(steps) == minimum_horizon(wide_dfg)

    def test_bad_limit_rejected(self, wide_dfg):
        with pytest.raises(ScheduleError):
            list_schedule(wide_dfg, {UnitClass.MULTIPLIER: 0})


class TestMobilityPath:
    def test_valid_schedule(self, wide_dfg):
        steps = mobility_path_schedule(wide_dfg, horizon=4)
        check_precedence(wide_dfg, steps)

    def test_no_extra_units_vs_fds(self, wide_dfg):
        fds = peak_usage(wide_dfg, fds_schedule(wide_dfg, 4))
        ours = peak_usage(wide_dfg, mobility_path_schedule(wide_dfg, 4))
        assert sum(ours.values()) <= sum(fds.values())

    def test_shortens_lifetime_spans(self, wide_dfg):
        from repro.dfg import variable_lifetimes
        fds = fds_schedule(wide_dfg, 5)
        mps = mobility_path_schedule(wide_dfg, 5)
        span = lambda s: sum(lt.span for lt in
                             variable_lifetimes(wide_dfg, s).values())
        assert span(mps) <= span(fds)

    def test_deterministic(self, wide_dfg):
        assert (mobility_path_schedule(wide_dfg, 4)
                == mobility_path_schedule(wide_dfg, 4))
