"""Unit tests for the symbolic value-flow certifier."""

import pytest

from repro.alloc import default_binding
from repro.analysis import ValueNumbering, certify
from repro.bench import load, names
from repro.dfg.ops import OpKind
from repro.errors import ScheduleError
from repro.etpn.from_dfg import default_design


def cert_of(design):
    return certify(design.dfg, design.steps, design.binding)


def codes_of(cert):
    return sorted({d.code for d in cert.divergences})


class TestValueNumbering:
    def test_commutative_canonicalisation(self):
        vn = ValueNumbering()
        a, b = vn.input("a"), vn.input("b")
        assert vn.apply(OpKind.ADD, (a, b)) == vn.apply(OpKind.ADD, (b, a))
        assert vn.apply(OpKind.MUL, (a, b)) == vn.apply(OpKind.MUL, (b, a))
        assert vn.apply(OpKind.SUB, (a, b)) != vn.apply(OpKind.SUB, (b, a))

    def test_move_is_transparent(self):
        vn = ValueNumbering()
        a = vn.input("a")
        assert vn.apply(OpKind.MOVE, (a,)) == a

    def test_hash_consing_and_render(self):
        vn = ValueNumbering()
        x = vn.apply(OpKind.ADD, (vn.input("a"), vn.const(3)))
        y = vn.apply(OpKind.ADD, (vn.const(3), vn.input("a")))
        assert x == y
        assert vn.render(x) == "(a + 3)"


class TestValidCertificates:
    def test_default_designs_certify(self, chain_dfg, diamond_dfg,
                                     multidef_dfg, loop_dfg):
        for dfg in (chain_dfg, diamond_dfg, multidef_dfg, loop_dfg):
            cert = cert_of(default_design(dfg))
            assert cert.valid, cert.summary()

    def test_all_benchmarks_certify(self):
        for name in names():
            cert = cert_of(default_design(load(name)))
            assert cert.valid, f"{name}: {cert.summary()}"

    def test_legal_register_sharing_certifies(self, chain_dfg):
        """x, y, z have disjoint lifetimes; packing them into one
        register is exactly the merger the paper performs — the
        certificate must still hold."""
        design = default_design(chain_dfg)
        binding = (design.binding.merge_registers("R_x", "R_y")
                   .merge_registers("R_x", "R_z"))
        cert = certify(chain_dfg, design.steps, binding)
        assert cert.valid, cert.summary()

    def test_condition_certified(self, loop_dfg):
        cert = cert_of(default_design(loop_dfg))
        assert "c" in cert.conditions
        ref, impl = cert.conditions["c"]
        assert impl == ref


class TestDivergences:
    def test_double_booked_register(self, diamond_dfg):
        """Both mult results forced into one register: the second write
        clobbers the first at the same clock edge."""
        design = default_design(diamond_dfg)
        binding = design.binding.merge_registers("R_x", "R_y")
        cert = certify(diamond_dfg, design.steps, binding)
        assert not cert.valid
        assert codes_of(cert) == ["EQV002", "EQV003", "EQV005"]
        ref, impl = cert.outputs["z"]
        assert impl != ref

    def test_premature_read_schedule(self, chain_dfg):
        """N2 scheduled alongside N1 reads R_x before the write lands."""
        steps = {"N1": 0, "N2": 0, "N3": 1}
        cert = certify(chain_dfg, steps, default_binding(chain_dfg))
        assert "EQV003" in codes_of(cert)

    def test_missing_output_register(self, chain_dfg):
        design = default_design(chain_dfg)
        binding = design.binding.copy()
        del binding.register_of["z"]
        cert = certify(chain_dfg, design.steps, binding)
        assert "EQV001" in codes_of(cert)
        ref, impl = cert.outputs["z"]
        assert impl is None

    def test_incomplete_schedule_rejected(self, chain_dfg):
        with pytest.raises(ScheduleError):
            certify(chain_dfg, {"N1": 0}, default_binding(chain_dfg))

    def test_summary_and_to_dict(self, diamond_dfg):
        design = default_design(diamond_dfg)
        binding = design.binding.merge_registers("R_x", "R_y")
        cert = certify(diamond_dfg, design.steps, binding)
        assert "DIVERGES" in cert.summary()
        payload = cert.to_dict()
        assert payload["valid"] is False
        assert payload["outputs"]["z"]["matches"] is False
        assert payload["divergences"]
