"""Budget semantics and their integration into the long-running kernels."""

import pytest

from repro.analysis.reach_graph import ReachabilityGraph
from repro.atpg import ATPGConfig, RandomPhaseConfig, run_atpg
from repro.bench import load
from repro.etpn.from_dfg import default_design
from repro.gates import expand_to_gates
from repro.petri.builders import control_net_for_design
from repro.rtl import generate_rtl
from repro.runtime import (Budget, REASON_CANCELLED, REASON_DEADLINE,
                           REASON_STEPS)
from repro.runtime.budget import CLOCK_CHECK_INTERVAL
from repro.synth import run_ours


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestBudget:
    def test_unlimited_never_exhausts(self):
        budget = Budget.unlimited()
        assert budget.charge(10_000)
        assert not budget.exhausted()
        assert budget.reason is None
        assert budget.remaining_seconds() is None

    def test_step_ceiling(self):
        budget = Budget(max_steps=3)
        assert budget.charge()
        assert budget.charge(2)
        assert not budget.charge()  # fourth step crosses the ceiling
        assert budget.reason == REASON_STEPS

    def test_exhaustion_is_sticky(self):
        budget = Budget(max_steps=1)
        budget.charge(5)
        assert budget.exhausted()
        assert not budget.charge(0)
        assert budget.exhausted()

    def test_deadline_via_fake_clock(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=10.0, clock=clock)
        assert budget.charge()
        clock.now = 11.0
        assert budget.exhausted()
        assert budget.reason == REASON_DEADLINE

    def test_charge_amortises_clock_checks(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=10.0, clock=clock)
        assert budget.charge()  # first charge reads the clock
        clock.now = 11.0
        # The next clock read is CLOCK_CHECK_INTERVAL steps away, so a
        # single cheap charge does not notice the blown deadline...
        assert budget.charge()
        # ...but charging past the interval does.
        assert not budget.charge(CLOCK_CHECK_INTERVAL)
        assert budget.reason == REASON_DEADLINE

    def test_exhausted_always_consults_clock(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=10.0, clock=clock)
        budget.charge()
        clock.now = 11.0
        assert budget.exhausted()  # no amortisation at stage boundaries

    def test_cancel(self):
        budget = Budget.unlimited()
        budget.cancel()
        assert budget.exhausted()
        assert budget.reason == REASON_CANCELLED
        budget.cancel("other")  # first reason wins
        assert budget.reason == REASON_CANCELLED

    def test_remaining_seconds(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=10.0, clock=clock)
        clock.now = 4.0
        assert budget.remaining_seconds() == pytest.approx(6.0)
        clock.now = 15.0
        assert budget.remaining_seconds() == 0.0

    def test_provenance(self):
        budget = Budget(max_steps=1)
        assert budget.provenance()["budget_exhausted"] is False
        budget.charge(2)
        tags = budget.provenance()
        assert tags == {"budget_exhausted": True,
                        "budget_reason": REASON_STEPS,
                        "budget_steps": 2}


class TestKernelIntegration:
    def test_synthesize_starved_returns_degraded_best_so_far(self):
        result = run_ours(load("ex"), budget=Budget(max_steps=0))
        assert result.degraded
        assert any("budget_exhausted" in r
                   for r in result.degradation_reasons)
        assert result.iterations == 0
        result.design.validate()  # partial result is still a design

    def test_synthesize_partial_budget_applies_some_mergers(self):
        full = run_ours(load("ex"))
        partial = run_ours(load("ex"), budget=Budget(max_steps=2))
        assert partial.degraded
        assert 0 < partial.iterations <= 2 < full.iterations
        partial.design.validate()

    def test_synthesize_unlimited_budget_not_degraded(self):
        result = run_ours(load("ex"), budget=Budget.unlimited())
        assert not result.degraded
        assert result.degradation_reasons == []

    def test_atpg_budget_exhaustion_accounts_every_fault(self):
        design = run_ours(load("ex")).design
        netlist = expand_to_gates(generate_rtl(design, 4))
        config = ATPGConfig(
            random=RandomPhaseConfig(max_sequences=2, saturation=1,
                                     sequence_length=8),
            max_frames=4, max_backtracks=16, fault_fraction=0.5)
        result = run_atpg(netlist, config, budget=Budget(max_steps=50))
        assert result.budget_exhausted
        assert result.budget_reason == REASON_STEPS
        assert (result.detected + result.aborted_faults
                + result.untestable_faults
                + result.untestable_by_analysis) == result.total_faults
        assert result.summary()["budget_exhausted"] is True

    def test_atpg_wall_seconds_config(self):
        design = run_ours(load("ex")).design
        netlist = expand_to_gates(generate_rtl(design, 4))
        config = ATPGConfig(
            random=RandomPhaseConfig(max_sequences=2, saturation=1,
                                     sequence_length=8),
            max_frames=4, max_backtracks=16, fault_fraction=0.5,
            wall_seconds=0.0)
        result = run_atpg(netlist, config)
        assert result.budget_exhausted
        assert result.budget_reason == REASON_DEADLINE

    def test_reachability_budget_truncates_instead_of_raising(self):
        design = default_design(load("ex"))
        net = control_net_for_design(design.dfg, design.steps)
        full = ReachabilityGraph(net)
        partial = ReachabilityGraph(net, budget=Budget(max_steps=1))
        assert not full.truncated
        assert partial.truncated
        assert partial.truncation_reason == "budget_exhausted"
        assert set(partial.markings) <= set(full.markings)
        assert net.initial_marking in set(partial.markings)
