"""Unit and integration tests for RTL generation and simulation.

The headline integration test: for every benchmark and every flow, the
generated RTL driven by its own control table computes exactly what the
reference DFG interpreter computes.
"""

import random

import pytest

from repro.bench import load
from repro.dfg import OpKind
from repro.etpn import default_design
from repro.rtl import (apply_op, build_control_table, evaluate_dfg,
                       generate_rtl, mask, simulate_rtl)
from repro.synth import run_camad, run_ours


class TestSemantics:
    def test_add_wraps(self):
        assert apply_op(OpKind.ADD, 255, 1, 8) == 0

    def test_sub_wraps(self):
        assert apply_op(OpKind.SUB, 0, 1, 8) == 255

    def test_mul_truncates(self):
        assert apply_op(OpKind.MUL, 16, 16, 8) == 0
        assert apply_op(OpKind.MUL, 5, 7, 8) == 35

    def test_div(self):
        assert apply_op(OpKind.DIV, 37, 5, 8) == 7

    def test_div_by_zero_all_ones(self):
        assert apply_op(OpKind.DIV, 3, 0, 8) == 255

    def test_comparisons(self):
        assert apply_op(OpKind.LT, 3, 5, 8) == 1
        assert apply_op(OpKind.LT, 5, 3, 8) == 0
        assert apply_op(OpKind.EQ, 7, 7, 8) == 1
        assert apply_op(OpKind.GE, 7, 7, 8) == 1

    def test_logic(self):
        assert apply_op(OpKind.AND, 0b1100, 0b1010, 4) == 0b1000
        assert apply_op(OpKind.XOR, 0b1100, 0b1010, 4) == 0b0110
        assert apply_op(OpKind.NOT, 0b1100, 0, 4) == 0b0011

    def test_shifts_mod_width(self):
        assert apply_op(OpKind.SHL, 1, 3, 8) == 8
        assert apply_op(OpKind.SHL, 1, 8, 8) == 1  # shift mod 8

    def test_mask(self):
        assert mask(4) == 15


class TestInterpreter:
    def test_chain(self, chain_dfg):
        values = evaluate_dfg(chain_dfg, {"a": 3, "b": 4, "c": 5, "d": 1},
                              bits=8)
        assert values["x"] == 12
        assert values["y"] == 17
        assert values["z"] == 16

    def test_multidef(self, multidef_dfg):
        values = evaluate_dfg(multidef_dfg, {"u": 10, "e": 3, "f": 2},
                              bits=8)
        assert values["u1"] == 5

    def test_loop_condition(self, loop_dfg):
        values = evaluate_dfg(loop_dfg, {"x": 1, "dx": 2, "a": 10}, bits=8)
        assert values["x1"] == 3
        assert values["c"] == 1


class TestRtlGeneration:
    def test_default_design_structure(self, chain_dfg):
        design = default_design(chain_dfg)
        rtl = generate_rtl(design, bits=8)
        assert len(rtl.registers) == 7
        assert len(rtl.units) == 3
        assert rtl.in_ports == ["in_a", "in_b", "in_c", "in_d"]
        assert rtl.out_ports == {"out_z": "R_z"}

    def test_merged_unit_kinds(self, chain_dfg):
        design = default_design(chain_dfg)
        design = design.replaced(
            binding=design.binding.merge_modules("M_N2", "M_N3"))
        rtl = generate_rtl(design, bits=8)
        unit = rtl.units["M_N2"]
        assert [k.name for k in unit.kinds] == ["ADD", "SUB"]
        assert unit.needs_op_select()

    def test_control_signals_sorted_unique(self, chain_dfg):
        rtl = generate_rtl(default_design(chain_dfg), bits=8)
        signals = rtl.control_signals()
        assert signals == sorted(signals)
        assert len(signals) == len(set(signals))

    def test_condition_port(self, loop_dfg):
        rtl = generate_rtl(default_design(loop_dfg), bits=8)
        assert rtl.cond_ports == {"cond_c": "M_N2"}


class TestControlTable:
    def test_phase_count(self, chain_dfg):
        design = default_design(chain_dfg)
        rtl = generate_rtl(design, bits=8)
        table = build_control_table(design, rtl)
        assert table.phase_count == design.num_steps + 1

    def test_preload_phase_loads_first_inputs(self, chain_dfg):
        design = default_design(chain_dfg)
        rtl = generate_rtl(design, bits=8)
        table = build_control_table(design, rtl)
        assert table.signal(0, "R_a_load") == 1
        assert table.signal(0, "R_b_load") == 1
        # c is first used in step 1, so it loads during phase 1.
        assert table.signal(0, "R_c_load") == 0
        assert table.signal(1, "R_c_load") == 1

    def test_writeback_phase(self, chain_dfg):
        design = default_design(chain_dfg)
        rtl = generate_rtl(design, bits=8)
        table = build_control_table(design, rtl)
        # N1 executes in step 0 (phase 1) and writes R_x there.
        assert table.signal(1, "R_x_load") == 1


class TestRtlMatchesInterpreter:
    def _check(self, design, bits=8, seed=1, rounds=10):
        rtl = generate_rtl(design, bits)
        table = build_control_table(design, rtl)
        rng = random.Random(seed)
        for _ in range(rounds):
            inputs = {v.name: rng.randrange(1 << bits)
                      for v in design.dfg.inputs()}
            expected = evaluate_dfg(design.dfg, inputs, bits)
            result = simulate_rtl(design, rtl, table, inputs)
            for out_port in rtl.out_ports:
                var = out_port.removeprefix("out_")
                assert result.outputs[out_port] == expected[var], \
                    f"{design.dfg.name}/{design.label}: {var}"
            for cond_port in rtl.cond_ports:
                var = cond_port.removeprefix("cond_")
                assert result.conditions[cond_port] == expected[var]

    @pytest.mark.parametrize("name", ["ex", "dct", "diffeq", "paulin",
                                      "tseng"])
    def test_default_design(self, name):
        self._check(default_design(load(name)))

    @pytest.mark.parametrize("name", ["ex", "dct", "diffeq"])
    def test_ours_design(self, name):
        self._check(run_ours(load(name)).design)

    @pytest.mark.parametrize("name", ["ex", "dct", "diffeq"])
    def test_camad_design(self, name):
        self._check(run_camad(load(name)).design)

    def test_4bit_and_16bit(self):
        design = run_ours(load("ex")).design
        self._check(design, bits=4)
        self._check(design, bits=16, rounds=4)
