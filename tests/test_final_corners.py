"""Final corner-case tests across small helpers."""

import pytest

from repro.alloc import Binding, default_binding
from repro.bench import load
from repro.cost import floorplan
from repro.cost.library import DEFAULT_LIBRARY
from repro.errors import BindingError
from repro.etpn import default_design
from repro.gates import GateNetlist, GateType
from repro.gates.prune import observable_gates, prune_unobservable
from repro.petri import control_net_from_schedule, critical_path
from repro.synth import SynthesisResult, run_ours


class TestPetriCorners:
    def test_step_labels_carried(self):
        net = control_net_from_schedule("l", 2,
                                        step_labels={0: "N1 N2", 1: "N3"})
        assert net.places["S0"].label == "N1 N2"
        assert net.places["S1"].label == "N3"

    def test_critical_path_transitions(self):
        cp = critical_path(control_net_from_schedule("t", 3))
        assert len(cp.transitions) == 3   # t0, t1, t2 (into Pfinal)


class TestBindingCorners:
    def test_vars_in_unknown_register_empty(self, chain_dfg):
        binding = default_binding(chain_dfg)
        assert binding.vars_in("R_nothere") == []

    def test_merge_registers_unknown(self, chain_dfg):
        binding = default_binding(chain_dfg)
        with pytest.raises(BindingError):
            binding.merge_registers("R_a", "R_nothere")

    def test_empty_binding_counts(self):
        binding = Binding()
        assert binding.module_count() == 0
        assert binding.register_count() == 0
        assert binding.modules() == {}


class TestFloorplanCorners:
    def test_minimum_wirelength_one_pitch(self, chain_dfg):
        dp = default_design(chain_dfg).datapath
        plan = floorplan(dp, DEFAULT_LIBRARY.slot_pitch_mm)
        # Any two placed nodes are at least one pitch of wire apart.
        nodes = sorted(dp.nodes)
        assert (plan.wirelength_mm(nodes[0], nodes[1])
                >= DEFAULT_LIBRARY.slot_pitch_mm)

    def test_single_node_graph(self):
        from repro.dfg import DFGBuilder
        b = DFGBuilder("one")
        b.inputs("a")
        b.op("N1", "~", "x", "a")
        dp = default_design(b.build()).datapath
        plan = floorplan(dp, 0.1)
        assert len(plan.positions) == len(dp.nodes)


class TestPruneCorners:
    def test_dff_cone_kept_when_observable(self):
        net = GateNetlist("p")
        q = net.add_dff("q")
        a = net.add_input("a")
        d = net.add(GateType.XOR, (q, a))
        net.connect_dff(q, d)
        net.set_output("o", q)
        pruned = prune_unobservable(net)
        assert pruned.stats()["dffs"] == 1
        assert pruned.stats()["combinational"] == 1  # the XOR survives

    def test_dead_cone_dropped(self):
        net = GateNetlist("p2")
        a = net.add_input("a")
        b = net.add_input("b")
        keep = net.add(GateType.AND, (a, b))
        net.add(GateType.OR, (a, b))    # dead
        net.set_output("o", keep)
        pruned = prune_unobservable(net)
        assert pruned.stats()["combinational"] == 1
        assert len(observable_gates(net)) == 3

    def test_dead_inputs_kept(self):
        net = GateNetlist("p3")
        a = net.add_input("a")
        net.add_input("unused")
        net.set_output("o", net.add(GateType.BUF, (a,)))
        pruned = prune_unobservable(net)
        assert "unused" in pruned.inputs


class TestResultCorners:
    def test_result_summary(self):
        result = run_ours(load("tseng"))
        summary = result.summary()
        assert summary["label"] == "ours"
        assert summary["iterations"] == result.iterations
        assert "registers" in summary

    def test_empty_history_result(self, chain_dfg):
        design = default_design(chain_dfg)
        result = SynthesisResult(design)
        assert result.iterations == 0
        assert result.summary()["iterations"] == 0
