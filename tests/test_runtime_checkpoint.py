"""Atomic writes, the cell journal, and resumable experiment grids."""

import json
import os

import pytest

from repro.atpg import RandomPhaseConfig
from repro.bench import load
from repro.harness import ExperimentConfig, render_table, run_cell
from repro.io import load_design, save_design
from repro.runtime import (Journal, JournaledCell, atomic_write_text,
                           cell_record, record_key, restore_cell,
                           run_journaled_grid, scrubbed_records)
from repro.runtime.checkpoint import JOURNAL_FORMAT
from repro.synth import run_ours


def _tiny_config(bits: int) -> ExperimentConfig:
    return ExperimentConfig(
        bits=bits, fault_fraction=0.25,
        random=RandomPhaseConfig(max_sequences=4, saturation=2,
                                 sequence_length=12),
        max_backtracks=16)


@pytest.fixture(scope="module")
def ex_cell():
    return run_cell("ex", "ours", _tiny_config(4))


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"

    def test_overwrites(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "x")
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_failure_leaves_target_untouched(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "original")

        class Boom:
            def __str__(self):
                raise RuntimeError("boom")

        with pytest.raises(TypeError):
            atomic_write_text(path, Boom())  # type: ignore[arg-type]
        assert path.read_text() == "original"
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_save_design_is_loadable(self, tmp_path):
        design = run_ours(load("ex")).design
        path = tmp_path / "design.json"
        save_design(design, path)
        reloaded = load_design(path)
        assert reloaded.steps == design.steps


class TestJournal:
    def test_records_of_missing_file(self, tmp_path):
        assert Journal(tmp_path / "none.jsonl").records() == []

    def test_append_is_valid_jsonl(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append({"kind": "cell", "benchmark": "ex", "flow": "ours",
                        "bits": 4})
        journal.append({"kind": "cell", "benchmark": "ex", "flow": "camad",
                        "bits": 4})
        lines = (tmp_path / "j.jsonl").read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line) for line in lines)
        assert len(journal.records()) == 2

    def test_completed_cells_latest_wins(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append({"kind": "cell", "benchmark": "ex", "flow": "ours",
                        "bits": 4, "row": {"v": 1}})
        journal.append({"kind": "cell", "benchmark": "ex", "flow": "ours",
                        "bits": 4, "row": {"v": 2}})
        done = journal.completed_cells()
        assert list(done) == [("ex", "ours", 4)]
        assert done[("ex", "ours", 4)]["row"] == {"v": 2}

    def test_cell_record_round_trip(self, ex_cell):
        record = cell_record(ex_cell)
        assert record["format"] == JOURNAL_FORMAT
        assert record_key(record) == ("ex", "ours", 4)
        restored = restore_cell(record)
        assert isinstance(restored, JournaledCell)
        assert restored.row() == ex_cell.row()
        table_live = render_table("ex", [ex_cell])
        table_restored = render_table("ex", [restored])
        assert table_restored == table_live


def _formatted(flow: str, value: int = 0) -> dict:
    return {"format": JOURNAL_FORMAT, "kind": "cell", "benchmark": "ex",
            "flow": flow, "bits": 4, "row": {"v": value}}


class TestAppendFastPath:
    def test_append_is_in_place_after_creation(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append(_formatted("camad"))
        inode = os.stat(journal.path).st_ino
        journal.append(_formatted("ours"))
        # The O(1) fast path appends to the existing file; an atomic
        # rewrite would have renamed a temp file over it (new inode).
        assert os.stat(journal.path).st_ino == inode
        assert len(journal.records()) == 2

    def test_headerless_file_falls_back_to_rewrite(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"kind": "cell", "benchmark": "ex", '
                        '"flow": "camad", "bits": 4}\n')
        inode = os.stat(path).st_ino
        journal = Journal(path)
        journal.append(_formatted("ours"))
        assert os.stat(path).st_ino != inode
        assert len(journal.records()) == 2

    def test_torn_tail_dropped_and_append_repairs(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(json.dumps(_formatted("camad")) + "\n"
                        + '{"torn": tr')
        journal = Journal(path)
        assert len(journal.records()) == 1      # torn tail dropped
        journal.append(_formatted("ours"))      # no trailing \n: rewrite
        assert [json.loads(line) for line in
                path.read_text().splitlines()] == journal.records()
        assert len(journal.records()) == 2

    def test_mid_file_corruption_still_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"torn": tr\n' + json.dumps(_formatted("ours"))
                        + "\n")
        with pytest.raises(ValueError):
            Journal(path).records()

    def test_compact_repairs_a_torn_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(json.dumps(_formatted("camad")) + "\n"
                        + '{"torn": tr')
        journal = Journal(path)
        journal.compact()
        assert journal._appendable()
        assert len(journal.records()) == 1


class TestScrubbedRecords:
    def test_masks_wall_clock_and_sorts_by_grid_key(self):
        ours = dict(_formatted("ours"),
                    row={"tg_seconds": 1.23, "coverage_pct": 92.3},
                    provenance={"cache_key": "abc"})
        camad = dict(_formatted("camad"),
                     row={"tg_seconds": 9.87, "coverage_pct": 90.0})
        ours_rerun = dict(ours, row={"tg_seconds": 4.56,
                                     "coverage_pct": 92.3})
        ours_rerun.pop("provenance")
        # Completion order and wall clock differ; scrubbed bytes match.
        assert scrubbed_records([ours, camad]) == \
            scrubbed_records([camad, ours_rerun])
        assert "tg_seconds" not in scrubbed_records([ours])

    def test_deterministic_difference_still_detected(self):
        a = dict(_formatted("ours"), row={"tg_seconds": 1.0,
                                          "coverage_pct": 92.3})
        b = dict(_formatted("ours"), row={"tg_seconds": 1.0,
                                          "coverage_pct": 90.0})
        assert scrubbed_records([a]) != scrubbed_records([b])


class TestJournaledGrid:
    def test_resume_replays_instead_of_recomputing(self, tmp_path):
        grid = [("camad", 4), ("ours", 4)]
        journal = Journal(tmp_path / "grid.jsonl")
        first = run_journaled_grid("ex", grid, _tiny_config,
                                   journal=journal)
        assert len(journal.records()) == 2
        progress: list[str] = []
        second = run_journaled_grid("ex", grid, _tiny_config,
                                    journal=journal, resume=True,
                                    progress=progress.append)
        assert all(isinstance(c, JournaledCell) for c in second)
        assert sum("resuming" in p for p in progress) == 2
        assert [c.row() for c in second] == [c.row() for c in first]

    def test_without_resume_recomputes(self, tmp_path):
        grid = [("ours", 4)]
        journal = Journal(tmp_path / "grid.jsonl")
        run_journaled_grid("ex", grid, _tiny_config, journal=journal)
        again = run_journaled_grid("ex", grid, _tiny_config,
                                   journal=journal, resume=False)
        assert not any(isinstance(c, JournaledCell) for c in again)

    def test_no_journal_is_plain_run(self):
        cells = run_journaled_grid("ex", [("ours", 4)], _tiny_config)
        assert len(cells) == 1
        assert cells[0].row()["flow"] == "ours"
