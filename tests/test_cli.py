"""Tests for the command-line interface (fast subcommands only)."""

import pytest

from repro.cli import main


class TestCli:
    def test_synth_command(self, capsys):
        assert main(["synth", "ex", "-k", "3", "-a", "2", "-b", "1",
                     "--bits", "8"]) == 0
        out = capsys.readouterr().out
        assert "Schedule of ex" in out
        assert "mergers applied" in out

    def test_fig2_command(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "Schedule of ex" in out
        assert "share" in out

    def test_fig3_command(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Schedule of dct" in out
        assert "Schedule of diffeq" in out
        assert "loop while cond" in out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["synth", "nothere"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_synth_history_printed(self, capsys):
        main(["synth", "tseng", "--bits", "4"])
        out = capsys.readouterr().out
        assert "dE=" in out and "dH=" in out


class TestCliExtensions:
    def test_explore_command(self, capsys):
        assert main(["explore", "tseng", "--bits", "8"]) == 0
        out = capsys.readouterr().out
        assert "Pareto front" in out

    def test_export_dot(self, capsys):
        assert main(["export", "tseng", "--what", "dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_export_json(self, capsys):
        import json
        assert main(["export", "tseng", "--what", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["format"] == "repro-design-v1"

    def test_export_verilog(self, capsys):
        assert main(["export", "tseng", "--what", "verilog",
                     "--bits", "4"]) == 0
        out = capsys.readouterr().out
        assert "module" in out and "endmodule" in out

    def test_report_command(self, tmp_path, capsys):
        rows = tmp_path / "rows.jsonl"
        rows.write_text("")
        assert main(["report", "--rows", str(rows)]) == 0
        assert "no rows recorded" in capsys.readouterr().out
