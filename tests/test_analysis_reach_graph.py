"""Unit tests for the memoised reachability graph."""

import pytest

from repro.analysis import GraphEdge, ReachabilityGraph
from repro.errors import PetriNetError
from repro.petri import (FINAL_PLACE, PetriNet, ReachabilityTree,
                         control_net_from_schedule)


def fork_join_net(chain_length: int = 1) -> PetriNet:
    """S0 forks into two chains of ``chain_length`` places, then joins."""
    net = PetriNet(f"forkjoin{chain_length}")
    net.add_place("S0", delay=1)
    for branch in ("A", "B"):
        for i in range(chain_length):
            net.add_place(f"{branch}{i}", delay=1)
    net.add_place("J", delay=1)
    net.add_place(FINAL_PLACE, delay=0)
    net.add_transition("fork", ["S0"], ["A0", "B0"])
    for branch in ("A", "B"):
        for i in range(chain_length - 1):
            net.add_transition(f"t{branch}{i}", [f"{branch}{i}"],
                               [f"{branch}{i + 1}"])
    last = chain_length - 1
    net.add_transition("join", [f"A{last}", f"B{last}"], ["J"])
    net.add_transition("end", ["J"], [FINAL_PLACE])
    net.set_initial("S0")
    net.set_final(FINAL_PLACE)
    return net


def unsafe_net() -> PetriNet:
    """Firing t would put a second token into the already-marked A."""
    net = PetriNet("unsafe")
    net.add_place("P0", delay=1)
    net.add_place("A", delay=1)
    net.add_transition("t", ["P0"], ["A"])
    net.set_initial("P0", "A")
    return net


class TestReachabilityGraph:
    def test_linear_chain(self):
        net = control_net_from_schedule("lin", 4)
        graph = ReachabilityGraph(net)
        assert len(graph) == 5  # S1..S4 plus the final marking
        assert graph.contains(frozenset({FINAL_PLACE}))
        assert graph.is_safe()

    def test_edges_and_successors(self):
        net = control_net_from_schedule("lin", 2)
        graph = ReachabilityGraph(net)
        first = graph.successors(net.initial_marking)
        assert len(first) == 1
        assert isinstance(first[0], GraphEdge)
        assert first[0].src == net.initial_marking
        assert graph.successors(frozenset({"nowhere"})) == []

    def test_loop_terminates(self):
        net = control_net_from_schedule("loop", 3, loop_condition="c")
        graph = ReachabilityGraph(net)
        # 3 step markings plus the final one; the back edge adds no new
        # marking, only an edge back to an already-visited one.
        assert len(graph) == 4
        back = [e for e in graph.edges if e.dst == net.initial_marking]
        assert back, "the loop back edge must appear in the graph"

    def test_fork_join_markings(self):
        graph = ReachabilityGraph(fork_join_net(2))
        assert graph.contains(frozenset({"A0", "B0"}))
        assert graph.contains(frozenset({"A0", "B1"}))
        assert graph.contains(frozenset({"A1", "B0"}))
        assert graph.contains(frozenset({FINAL_PLACE}))

    def test_global_dedup_beats_the_tree(self):
        """The tree enumerates interleavings; the graph only markings."""
        net = fork_join_net(6)
        tree = ReachabilityTree(net)
        graph = ReachabilityGraph(net)
        # Two 6-chains: the graph holds ~6*6 concurrent markings, while
        # the tree walks every interleaving of the two chains.
        assert len(graph) < 50
        assert len(tree.nodes) > 900
        assert graph.is_safe()

    def test_unsafe_firing_recorded_not_raised(self):
        graph = ReachabilityGraph(unsafe_net())
        assert not graph.is_safe()
        [firing] = graph.unsafe_firings
        assert firing.trans_id == "t"
        assert firing.places == ("A",)
        assert firing.marking == frozenset({"P0", "A"})

    def test_max_markings_budget(self):
        net = control_net_from_schedule("big", 50)
        with pytest.raises(PetriNetError):
            ReachabilityGraph(net, max_markings=10)
