"""Unit tests for bindings, merging and binding validation."""

import pytest

from repro.alloc import (default_binding, module_unit_class,
                         validate_binding)
from repro.dfg import UnitClass
from repro.errors import BindingError


class TestDefaultBinding:
    def test_one_module_per_op(self, chain_dfg):
        binding = default_binding(chain_dfg)
        assert binding.module_count() == 3
        assert binding.module_of["N1"] == "M_N1"

    def test_one_register_per_variable(self, chain_dfg):
        binding = default_binding(chain_dfg)
        # a, b, c, d, x, y, z all need registers.
        assert binding.register_count() == 7

    def test_conditions_get_no_register(self, loop_dfg):
        binding = default_binding(loop_dfg)
        assert "c" not in binding.register_of


class TestMerging:
    def test_merge_modules(self, chain_dfg):
        binding = default_binding(chain_dfg)
        merged = binding.merge_modules("M_N2", "M_N3")
        assert merged.module_of["N3"] == "M_N2"
        assert merged.module_count() == 2
        # Original untouched.
        assert binding.module_of["N3"] == "M_N3"

    def test_merge_registers(self, chain_dfg):
        binding = default_binding(chain_dfg)
        merged = binding.merge_registers("R_a", "R_x")
        assert merged.register_of["x"] == "R_a"
        assert merged.register_count() == 6

    def test_merge_module_with_itself(self, chain_dfg):
        binding = default_binding(chain_dfg)
        with pytest.raises(BindingError):
            binding.merge_modules("M_N1", "M_N1")

    def test_merge_unknown_module(self, chain_dfg):
        binding = default_binding(chain_dfg)
        with pytest.raises(BindingError):
            binding.merge_modules("M_N1", "M_nothere")

    def test_groupings(self, chain_dfg):
        binding = default_binding(chain_dfg).merge_modules("M_N2", "M_N3")
        assert binding.modules()["M_N2"] == ["N2", "N3"]
        assert binding.ops_on("M_N2") == ["N2", "N3"]
        assert binding.vars_in("R_a") == ["a"]


class TestValidation:
    def test_default_design_valid(self, chain_dfg):
        steps = {"N1": 0, "N2": 1, "N3": 2}
        validate_binding(chain_dfg, steps, default_binding(chain_dfg))

    def test_same_step_module_share_rejected(self, diamond_dfg):
        steps = {"N1": 0, "N2": 0, "N3": 1}
        binding = default_binding(diamond_dfg).merge_modules("M_N1", "M_N2")
        with pytest.raises(BindingError):
            validate_binding(diamond_dfg, steps, binding)

    def test_different_step_module_share_ok(self, diamond_dfg):
        steps = {"N1": 0, "N2": 1, "N3": 2}
        binding = default_binding(diamond_dfg).merge_modules("M_N1", "M_N2")
        validate_binding(diamond_dfg, steps, binding)

    def test_mixed_class_module_rejected(self, chain_dfg):
        # N1 is a mult, N2 an add: incompatible on one module.
        steps = {"N1": 0, "N2": 1, "N3": 2}
        binding = default_binding(chain_dfg).merge_modules("M_N1", "M_N2")
        with pytest.raises(BindingError):
            validate_binding(chain_dfg, steps, binding)

    def test_overlapping_register_share_rejected(self, diamond_dfg):
        steps = {"N1": 0, "N2": 0, "N3": 1}
        # x and y both live during step 1.
        binding = default_binding(diamond_dfg).merge_registers("R_x", "R_y")
        with pytest.raises(BindingError):
            validate_binding(diamond_dfg, steps, binding)

    def test_disjoint_register_share_ok(self, chain_dfg):
        steps = {"N1": 0, "N2": 1, "N3": 2}
        # a dies at step 0, y is born at step 1: disjoint.
        binding = default_binding(chain_dfg).merge_registers("R_a", "R_y")
        validate_binding(chain_dfg, steps, binding)

    def test_unbound_op_rejected(self, chain_dfg):
        steps = {"N1": 0, "N2": 1, "N3": 2}
        binding = default_binding(chain_dfg)
        del binding.module_of["N2"]
        with pytest.raises(BindingError):
            validate_binding(chain_dfg, steps, binding)

    def test_unbound_variable_rejected(self, chain_dfg):
        steps = {"N1": 0, "N2": 1, "N3": 2}
        binding = default_binding(chain_dfg)
        del binding.register_of["x"]
        with pytest.raises(BindingError):
            validate_binding(chain_dfg, steps, binding)

    def test_module_unit_class(self, diamond_dfg):
        binding = default_binding(diamond_dfg)
        assert module_unit_class(diamond_dfg, binding,
                                 "M_N1") == UnitClass.MULTIPLIER
        assert module_unit_class(diamond_dfg, binding,
                                 "M_N3") == UnitClass.ALU
