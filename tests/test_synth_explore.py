"""Unit tests for the design-space explorer."""

import pytest

from repro.bench import load
from repro.cost import CostModel
from repro.synth.explore import (DesignPoint, explore, pareto_front,
                                 render_front)


@pytest.fixture(scope="module")
def points():
    return explore(load("diffeq"), CostModel(bits=8))


class TestExplore:
    def test_points_are_distinct_designs(self, points):
        signatures = {tuple(sorted(p.design.steps.items()))
                      for p in points}
        assert len(signatures) == len(points)

    def test_every_point_valid(self, points):
        for point in points:
            point.design.validate()
            assert point.execution_time >= 1
            assert point.hardware_mm2 > 0
            assert 0.0 <= point.quality <= 1.0

    def test_front_is_subset_and_nondominated(self, points):
        front = pareto_front(points)
        assert set(id(p) for p in front) <= set(id(p) for p in points)
        for a in front:
            for b in front:
                assert not a.dominates(b) or a is b

    def test_dominated_points_removed(self, points):
        front = pareto_front(points)
        for point in points:
            if point not in front:
                assert any(q.dominates(point) for q in front)

    def test_render(self, points):
        text = render_front(pareto_front(points))
        assert "quality" in text
        assert "(" in text


class TestDominance:
    def _point(self, e, h, q):
        class _Fake:
            binding = None
        return DesignPoint((3, 2.0, 1.0), e, h, q, design=None)

    def test_strict_dominance(self):
        better = self._point(3, 1.0, 0.6)
        worse = self._point(4, 1.2, 0.5)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_tradeoff_is_incomparable(self):
        fast = self._point(3, 2.0, 0.5)
        small = self._point(5, 1.0, 0.5)
        assert not fast.dominates(small)
        assert not small.dominates(fast)

    def test_equal_points_do_not_dominate(self):
        a = self._point(3, 1.0, 0.5)
        b = self._point(3, 1.0, 0.5)
        assert not a.dominates(b)
