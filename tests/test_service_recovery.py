"""Kill-and-restart properties of the service.

The acceptance bar for the WAL design: for EVERY registered
``service.*`` chaos seam, killing the supervisor at that seam and
restarting must drain the queue to the same results as an
uninterrupted run — no lost jobs, no duplicated completed work.  A
hard-kill variant (``os._exit`` inside a WAL commit, no exception
unwinding, no ``finally`` blocks) proves the property does not depend
on orderly shutdown.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.runtime.chaos import ChaosCrash, ChaosInjector, Injection
from repro.runtime.checkpoint import scrubbed_records
from repro.service import (JobRequest, RetryPolicy, Spool, Supervisor)
from repro.service import supervisor as supervisor_module

QUICK = dict(flow="ours", bits=4, fault_fraction=0.25, max_sequences=4,
             saturation=2, sequence_length=6, max_backtracks=16)


def _submit_two(spool):
    jobs = []
    for benchmark in ("ex", "paulin"):
        jid, _ = spool.submit(JobRequest(benchmark=benchmark, **QUICK))
        jobs.append(jid)
    return jobs


def _fake_record(request):
    return {"format": "repro-journal-v1", "kind": "cell",
            "benchmark": request.benchmark, "flow": request.flow,
            "bits": request.bits, "row": {"ok": True}, "alloc": []}


def _supervisor(spool):
    return Supervisor(spool, retry=RetryPolicy(backoff_base=0.0),
                      poll_seconds=0.01)


def _reference(tmp_path, monkeypatch) -> str:
    monkeypatch.setattr(supervisor_module, "_execute_request",
                        lambda request, cache: _fake_record(request))
    spool = Spool(tmp_path / "reference")
    jobs = _submit_two(spool)
    _supervisor(spool).run()
    return scrubbed_records([spool.read_result(j) for j in jobs])


#: (seam, crash visit, j2 executions expected after restart,
#:  restart must adopt j2's spooled result).  Visit counts follow the
#: two-job inline drain: dequeue/dispatch/reap are visited once per
#: job, ledger_write once per transition (run j1, done j1, run j2,
#: done j2).
CRASH_PLANS = [
    ("service.dequeue", 2, 1, False),       # picking j2 off the queue
    ("service.dispatch", 2, 1, False),      # before j2 evaluates
    ("service.worker_reap", 2, 0, True),    # j2's result already spooled
    ("service.ledger_write", 4, 0, True),   # inside j2's done commit
]


class TestCrashRestartSweep:
    @pytest.mark.parametrize("seam,visit,reruns,adopts",
                             CRASH_PLANS,
                             ids=[p[0] for p in CRASH_PLANS])
    def test_kill_at_seam_then_restart_matches_uninterrupted(
            self, tmp_path, monkeypatch, seam, visit, reruns, adopts):
        reference = _reference(tmp_path, monkeypatch)
        executions: list[str] = []

        def counting(request, cache):
            executions.append(request.benchmark)
            return _fake_record(request)

        monkeypatch.setattr(supervisor_module, "_execute_request",
                            counting)
        spool = Spool(tmp_path / "crashed")
        jobs = _submit_two(spool)
        with pytest.raises(ChaosCrash):
            with ChaosInjector(Injection(seam, "crash", at_visit=visit)):
                _supervisor(spool).run()
        executions_at_crash = list(executions)

        restarted = _supervisor(spool).run()

        states = spool.states()
        assert all(states[j].state == "done" for j in jobs), seam
        assert restarted.drained and restarted.ok()
        assert scrubbed_records(
            [spool.read_result(j) for j in jobs]) == reference
        # j2 ran exactly as many more times as the crash point requires:
        # never re-evaluated once its result hit the spool.
        assert executions.count("paulin") == \
            executions_at_crash.count("paulin") + reruns
        assert (restarted.recovered == 1) == adopts
        # j1 completed before every crash point and is never redone
        assert executions.count("ex") == 1 and states[jobs[0]].attempts == 1


_HARD_KILL_SCRIPT = """
import os, sys
from repro.service import RetryPolicy, Spool, Supervisor
from repro.service import supervisor as supervisor_module
from repro.service.ledger import Ledger

def fake(request, cache):
    return {"format": "repro-journal-v1", "kind": "cell",
            "benchmark": request.benchmark, "flow": request.flow,
            "bits": request.bits, "row": {"ok": True}, "alloc": []}

supervisor_module._execute_request = fake
original_append = Ledger.append
calls = {"n": 0}

def dying_append(self, *args, **kwargs):
    calls["n"] += 1
    if calls["n"] == int(sys.argv[2]):
        os._exit(7)  # hard kill: no unwinding, no finally, no flush
    return original_append(self, *args, **kwargs)

Ledger.append = dying_append
Supervisor(Spool(sys.argv[1]),
           retry=RetryPolicy(backoff_base=0.0)).run()
"""


class TestHardKill:
    def test_os_exit_inside_a_wal_commit_recovers_on_restart(
            self, tmp_path, monkeypatch):
        spool = Spool(tmp_path / "spool")
        jobs = _submit_two(spool)
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        # append #4 is j2's done commit: its result is spooled, the
        # transition is not
        process = subprocess.run(
            [sys.executable, "-c", _HARD_KILL_SCRIPT,
             str(spool.root), "4"],
            env=env, capture_output=True, text=True, timeout=120)
        assert process.returncode == 7, process.stderr
        assert spool.states()[jobs[1]].state == "running"
        assert spool.read_result(jobs[1]) is not None

        executions = []
        monkeypatch.setattr(
            supervisor_module, "_execute_request",
            lambda request, cache: (executions.append(request.benchmark),
                                    _fake_record(request))[1])
        restarted = _supervisor(spool).run()
        states = spool.states()
        assert all(states[j].state == "done" for j in jobs)
        assert restarted.recovered == 1 and states[jobs[1]].recovered
        assert executions == []  # nothing re-evaluated after the kill
        assert all(states[j].attempts == 1 for j in jobs)

    def test_os_exit_before_any_commit_reruns_the_job(self, tmp_path,
                                                      monkeypatch):
        spool = Spool(tmp_path / "spool")
        jobs = _submit_two(spool)
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        # append #3 is j2's running commit: killed before anything about
        # j2's attempt is durable
        process = subprocess.run(
            [sys.executable, "-c", _HARD_KILL_SCRIPT,
             str(spool.root), "3"],
            env=env, capture_output=True, text=True, timeout=120)
        assert process.returncode == 7, process.stderr
        assert spool.states()[jobs[1]].state == "submitted"

        monkeypatch.setattr(supervisor_module, "_execute_request",
                            lambda request, cache: _fake_record(request))
        restarted = _supervisor(spool).run()
        assert restarted.done == 1 and restarted.recovered == 0
        assert all(spool.states()[j].state == "done" for j in jobs)
