"""Unit tests for the ETPN data-path graph."""


from repro.alloc import default_binding
from repro.dfg import DFGBuilder
from repro.etpn import DataPath, NodeKind, default_design


class TestConstruction:
    def test_node_kinds(self, chain_dfg):
        dp = DataPath(chain_dfg, default_binding(chain_dfg))
        kinds = {n.node_id: n.kind for n in dp.nodes.values()}
        assert kinds["PI_a"] == NodeKind.PORT_IN
        assert kinds["PO_z"] == NodeKind.PORT_OUT
        assert kinds["M_N1"] == NodeKind.MODULE
        assert kinds["R_x"] == NodeKind.REGISTER

    def test_port_to_register_arcs(self, chain_dfg):
        dp = DataPath(chain_dfg, default_binding(chain_dfg))
        assert any(a.src == "PI_a" and a.dst == "R_a" for a in dp.arcs)

    def test_register_to_module_arcs(self, chain_dfg):
        dp = DataPath(chain_dfg, default_binding(chain_dfg))
        assert any(a.src == "R_a" and a.dst == "M_N1" and a.port == 0
                   for a in dp.arcs)
        assert any(a.src == "R_b" and a.dst == "M_N1" and a.port == 1
                   for a in dp.arcs)

    def test_module_to_register_arc(self, chain_dfg):
        dp = DataPath(chain_dfg, default_binding(chain_dfg))
        assert any(a.src == "M_N1" and a.dst == "R_x" for a in dp.arcs)

    def test_output_port_arc(self, chain_dfg):
        dp = DataPath(chain_dfg, default_binding(chain_dfg))
        assert any(a.src == "R_z" and a.dst == "PO_z" for a in dp.arcs)

    def test_const_node(self):
        b = DFGBuilder("c")
        b.inputs("x")
        b.op("N1", "*", "y", 3, "x")
        dfg = b.build()
        dp = DataPath(dfg, default_binding(dfg))
        assert dp.nodes["C_3"].kind == NodeKind.CONST
        assert any(a.src == "C_3" and a.dst == "M_N1" for a in dp.arcs)

    def test_condition_node(self, loop_dfg):
        dp = DataPath(loop_dfg, default_binding(loop_dfg))
        assert dp.nodes["COND_c"].kind == NodeKind.COND
        cond_arcs = [a for a in dp.arcs if a.dst == "COND_c"]
        assert cond_arcs and cond_arcs[0].is_condition


class TestMuxCounting:
    def test_no_mux_without_sharing(self, chain_dfg):
        dp = DataPath(chain_dfg, default_binding(chain_dfg))
        assert dp.mux_count() == 0

    def test_module_sharing_creates_mux(self, diamond_dfg):
        steps = {"N1": 0, "N2": 1, "N3": 2}
        binding = default_binding(diamond_dfg).merge_modules("M_N1", "M_N2")
        dp = DataPath(diamond_dfg, binding)
        # Merged multiplier reads a/c on port 0 and b/d on port 1.
        assert dp.sources_of_port("M_N1", 0) == ["R_a", "R_c"]
        assert dp.mux_count() == 2

    def test_register_sharing_creates_mux(self, chain_dfg):
        # x (from N1) and z (from N3) in one register -> mux at its input.
        binding = default_binding(chain_dfg).merge_registers("R_x", "R_z")
        dp = DataPath(chain_dfg, binding)
        assert dp.mux_count() == 1
        assert dp.mux_inputs_total() == 2


class TestLoops:
    def test_self_loop_detection(self, multidef_dfg):
        # u1 = u - e; u1 = u1 - f with both subs on one module and u1 in
        # one register: module reads R_u1 and writes R_u1 -> self-loop.
        binding = default_binding(multidef_dfg).merge_modules("M_N1", "M_N2")
        dp = DataPath(multidef_dfg, binding)
        assert ("M_N1", "R_u1") in dp.self_loops()

    def test_no_self_loop_in_chain(self, chain_dfg):
        dp = DataPath(chain_dfg, default_binding(chain_dfg))
        assert dp.self_loops() == []


class TestDesign:
    def test_default_design_summary(self, chain_dfg):
        design = default_design(chain_dfg)
        s = design.summary()
        assert s["steps"] == 3
        assert s["modules"] == 3
        assert s["registers"] == 7
        assert s["muxes"] == 0

    def test_execution_time_matches_steps(self, chain_dfg):
        design = default_design(chain_dfg)
        assert design.execution_time == design.num_steps

    def test_replaced_shares_dfg(self, chain_dfg):
        design = default_design(chain_dfg)
        other = design.replaced(label="x")
        assert other.dfg is design.dfg
        assert other.label == "x"
        assert design.label == "default"

    def test_loop_design(self, loop_dfg):
        design = default_design(loop_dfg)
        design.validate()
        assert "t_loop" in design.control_net.transitions
